#include "loadgen/loadgen.hpp"

#include <condition_variable>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace bifrost::loadgen {

LoadGenerator::LoadGenerator(Options options, std::string host,
                             std::uint16_t port,
                             std::vector<RequestTemplate> mix)
    : options_(options),
      host_(std::move(host)),
      port_(port),
      mix_(std::move(mix)),
      rng_(options.rng_seed),
      arrivals_(options.poisson ? ArrivalSchedule::Mode::kPoisson
                                : ArrivalSchedule::Mode::kFixedRate,
                options.requests_per_second,
                util::derive_seed(options.rng_seed, /*stream=*/1)) {
  if (mix_.empty()) throw std::invalid_argument("loadgen needs a request mix");
  if (options_.requests_per_second <= 0.0) {
    throw std::invalid_argument("loadgen rate must be positive");
  }
  http::HttpClient::Options client_options;
  client_options.io_timeout = options_.request_timeout;
  client_options.max_idle_per_endpoint = options_.workers;
  client_ = std::make_unique<http::HttpClient>(client_options);
  users_.reserve(options_.virtual_users);
  for (std::size_t i = 0; i < options_.virtual_users; ++i) {
    users_.push_back(std::make_unique<VirtualUser>());
  }
}

LoadGenerator::~LoadGenerator() { stop(); }

void LoadGenerator::start() {
  if (running_.exchange(true)) return;
  start_time_ = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] {
      while (true) {
        Job job;
        {
          std::unique_lock<std::mutex> lock(queue_mutex_);
          queue_cv_.wait(lock,
                         [this] { return !running_ || !queue_.empty(); });
          if (queue_.empty()) {
            if (!running_) return;
            continue;
          }
          job = queue_.front();
          queue_.erase(queue_.begin());
        }
        fire(job.user, mix_[job.tmpl], job.at_seconds);
      }
    });
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void LoadGenerator::stop() {
  if (!running_.exchange(false)) return;
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void LoadGenerator::run_for(std::chrono::milliseconds duration) {
  start();
  std::this_thread::sleep_for(duration);
  stop();
}

void LoadGenerator::dispatch_loop() {
  auto next = start_time_;
  std::uint64_t sequence = 0;
  while (running_.load()) {
    // Open loop: the next send time comes from the pre-seeded arrival
    // schedule, never from how long previous requests took.
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(arrivals_.next_gap_seconds()));
    std::this_thread::sleep_until(next);
    if (!running_.load()) break;

    std::size_t tmpl;
    std::size_t user;
    {
      const std::lock_guard<std::mutex> lock(rng_mutex_);
      // Weighted template pick.
      double total = 0.0;
      for (const RequestTemplate& t : mix_) total += t.weight;
      double roll = rng_.uniform() * total;
      tmpl = 0;
      for (std::size_t i = 0; i < mix_.size(); ++i) {
        roll -= mix_[i].weight;
        if (roll <= 0.0) {
          tmpl = i;
          break;
        }
      }
      user = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(users_.size()) - 1));
    }
    const double at_seconds =
        std::chrono::duration<double>(next - start_time_).count();
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(Job{user, tmpl, at_seconds});
    }
    queue_cv_.notify_one();
    ++sequence;
  }
}

void LoadGenerator::fire(std::size_t user_index, const RequestTemplate& tmpl,
                         double at_seconds) {
  http::Request request;
  {
    const std::lock_guard<std::mutex> lock(rng_mutex_);
    request = tmpl.make(rng_);
  }

  if (options_.user_headers) {
    for (const auto& [name, value] : options_.user_headers(user_index)) {
      request.headers.set(name, value);
    }
  }

  VirtualUser& user = *users_[user_index];
  {
    const std::lock_guard<std::mutex> lock(user.mutex);
    if (!user.cookies.empty()) {
      std::string cookie_header;
      for (const auto& [name, value] : user.cookies) {
        if (!cookie_header.empty()) cookie_header += "; ";
        cookie_header += name + "=" + value;
      }
      request.headers.set("Cookie", cookie_header);
    }
  }

  const auto send_time = std::chrono::steady_clock::now();
  auto response = client_->request(std::move(request), host_, port_);
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - send_time)
          .count();
  sent_.fetch_add(1);

  CompletedRequest completed;
  completed.at_seconds = at_seconds;
  completed.latency_ms = latency_ms;
  completed.user = user_index;
  completed.type = tmpl.name;
  if (response.ok()) {
    completed.status = response.value().status;
    completed.served_by =
        response.value().headers.get("X-Bifrost-Version").value_or("");
    // Store cookies (sticky-session UUIDs) back into the user's jar.
    for (const auto& [name, value] : response.value().headers.all()) {
      if (!util::iequals(name, "Set-Cookie")) continue;
      const auto semicolon = value.find(';');
      const auto pair = util::split_once(
          semicolon == std::string::npos ? value : value.substr(0, semicolon),
          '=');
      if (pair) {
        const std::lock_guard<std::mutex> lock(user.mutex);
        user.cookies[std::string(util::trim(pair->first))] = pair->second;
      }
    }
    if (completed.status >= 500) errors_.fetch_add(1);
  } else {
    completed.status = 0;
    errors_.fetch_add(1);
  }
  {
    const std::lock_guard<std::mutex> lock(results_mutex_);
    results_.push_back(std::move(completed));
  }
}

std::vector<CompletedRequest> LoadGenerator::results() const {
  const std::lock_guard<std::mutex> lock(results_mutex_);
  return results_;
}

util::Summary LoadGenerator::latency_summary(double from_seconds,
                                             double to_seconds) const {
  std::vector<double> latencies;
  {
    const std::lock_guard<std::mutex> lock(results_mutex_);
    for (const CompletedRequest& r : results_) {
      if (r.at_seconds >= from_seconds && r.at_seconds < to_seconds &&
          r.status > 0 && r.status < 500) {
        latencies.push_back(r.latency_ms);
      }
    }
  }
  return util::summarize(latencies);
}

}  // namespace bifrost::loadgen
