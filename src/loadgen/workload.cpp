#include "loadgen/workload.hpp"

#include "json/json.hpp"

namespace bifrost::loadgen {

std::vector<RequestTemplate> paper_request_mix(const std::string& auth_token,
                                               std::size_t product_count) {
  const std::string bearer = "Bearer " + auth_token;
  const auto product_id = [product_count](util::Rng& rng) {
    return "p" + std::to_string(rng.uniform_int(
                     1, static_cast<std::int64_t>(product_count)));
  };
  static const char* kQueries[] = {"lap", "pho", "cam", "mon", "dro"};

  std::vector<RequestTemplate> mix;
  mix.push_back(RequestTemplate{
      "buy", 1.0, [bearer, product_id](util::Rng& rng) {
        http::Request req;
        req.method = "POST";
        req.target = "/buy";
        req.headers.set("Authorization", bearer);
        req.headers.set("Content-Type", "application/json");
        req.body = json::Value(json::Object{{"productId", product_id(rng)},
                                            {"buyer", "loadgen"}})
                       .dump();
        return req;
      }});
  mix.push_back(RequestTemplate{
      "details", 1.0, [bearer, product_id](util::Rng& rng) {
        http::Request req;
        req.method = "GET";
        req.target = "/products/" + product_id(rng);
        req.headers.set("Authorization", bearer);
        return req;
      }});
  mix.push_back(RequestTemplate{"products", 1.0, [bearer](util::Rng&) {
                                  http::Request req;
                                  req.method = "GET";
                                  req.target = "/products";
                                  req.headers.set("Authorization", bearer);
                                  return req;
                                }});
  mix.push_back(RequestTemplate{
      "search", 1.0, [bearer](util::Rng& rng) {
        http::Request req;
        req.method = "GET";
        req.target = std::string("/search?q=") +
                     kQueries[rng.uniform_int(0, 4)];
        req.headers.set("Authorization", bearer);
        return req;
      }});
  return mix;
}

}  // namespace bifrost::loadgen
