// Open-loop arrival processes for load generation. An ArrivalSchedule
// produces the absolute send times of an arrival stream up front —
// independent of how long any request takes — so a stalled system under
// test cannot slow the offered load down and hide its own stall
// (coordinated omission). The schedule is a pure function of
// (rate, mode, seed): the same seed replays the identical arrival
// sequence in wall-clock load tests and in virtual-time chaos soaks.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace bifrost::loadgen {

class ArrivalSchedule {
 public:
  enum class Mode {
    kFixedRate,  ///< constant inter-arrival gap of 1/rate seconds
    kPoisson,    ///< exponential gaps with mean 1/rate (memoryless)
  };

  /// `rate` is arrivals per second (> 0). The RNG stream is owned by
  /// the schedule, so interleaved consumers cannot perturb it.
  ArrivalSchedule(Mode mode, double rate, std::uint64_t seed);

  /// Gap to the next arrival, in seconds. Deterministic per seed.
  [[nodiscard]] double next_gap_seconds();

  /// Absolute time of the next arrival (sum of gaps so far), seconds
  /// from the stream's origin. Advances the stream.
  [[nodiscard]] double next_arrival_seconds();

  /// Pre-computes the arrival times in [0, horizon_seconds). Advances
  /// the stream past the horizon.
  [[nodiscard]] std::vector<double> arrivals_until(double horizon_seconds);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] double rate() const { return rate_; }
  /// Arrivals generated so far.
  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  Mode mode_;
  double rate_;
  double mean_gap_;
  double clock_seconds_ = 0.0;
  std::uint64_t generated_ = 0;
  util::Rng rng_;
};

}  // namespace bifrost::loadgen
