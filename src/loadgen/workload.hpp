#pragma once

#include <string>
#include <vector>

#include "loadgen/loadgen.hpp"

namespace bifrost::loadgen {

/// The paper's 4-request JMeter mix against the product entry point
/// (§5.1.2): Buy (POST, DB write, empty response), Details (GET one
/// product, small body), Products (GET catalog incl. buyers, large
/// body), Search (GET, fans out to the search service). All carry the
/// bearer token.
std::vector<RequestTemplate> paper_request_mix(const std::string& auth_token,
                                               std::size_t product_count);

}  // namespace bifrost::loadgen
