// Assembly of the full case-study deployment (paper Figure 5): doc
// store, auth, search + fastSearch, product + product A + product B,
// frontend, gateway, optional Bifrost proxies for the product and
// search services, and the metrics provider with a scrape loop.
#pragma once

#include <memory>
#include <string>

#include "casestudy/docstore.hpp"
#include "casestudy/services.hpp"
#include "core/model.hpp"
#include "metrics/scraper.hpp"
#include "metrics/server.hpp"
#include "proxy/proxy.hpp"
#include "runtime/event_loop.hpp"

namespace bifrost::casestudy {

struct AppOptions {
  bool with_proxies = true;
  /// Artificial proxy per-request cost (see BifrostProxy::Options).
  std::chrono::microseconds proxy_emulation_cost{0};
  /// Base processing delays per service.
  std::chrono::microseconds product_delay{10000};
  std::chrono::microseconds search_delay{8000};
  std::chrono::microseconds fast_search_delay{3000};
  std::chrono::microseconds auth_delay{1000};
  std::chrono::microseconds db_delay{1000};
  /// Worker-thread bounds (smaller = earlier queueing under load).
  std::size_t product_workers = 4;
  std::size_t search_workers = 4;
  std::size_t db_workers = 4;
  std::size_t auth_workers = 8;
  /// Business-metric difference between the A/B variants: sales recorded
  /// per buy. B converting better is the paper's implied A/B outcome.
  double product_a_conversion = 1.0;
  double product_b_conversion = 1.25;
  std::chrono::milliseconds scrape_interval{1000};
  std::uint64_t rng_seed = 42;
  std::size_t seed_products = 12;
  std::size_t seed_users = 4;
};

/// Owns every component; all ports are ephemeral (loopback).
class CaseStudyApp {
 public:
  explicit CaseStudyApp(AppOptions options = {});
  ~CaseStudyApp();

  CaseStudyApp(const CaseStudyApp&) = delete;
  CaseStudyApp& operator=(const CaseStudyApp&) = delete;

  /// Starts all services (+ proxies + metrics scraper); seeds the store.
  void start();
  void stop();

  // Entry points --------------------------------------------------------
  [[nodiscard]] Endpoint gateway_endpoint() const;
  /// Where product traffic enters: the product proxy when proxies are
  /// deployed, the stable product service otherwise.
  [[nodiscard]] Endpoint product_entry() const;
  [[nodiscard]] Endpoint metrics_endpoint() const;

  // Components ----------------------------------------------------------
  [[nodiscard]] DocStoreService& docstore() { return *docstore_; }
  [[nodiscard]] AuthService& auth() { return *auth_; }
  [[nodiscard]] ProductService& product_stable() { return *product_; }
  [[nodiscard]] ProductService& product_a() { return *product_a_; }
  [[nodiscard]] ProductService& product_b() { return *product_b_; }
  [[nodiscard]] SearchService& search_stable() { return *search_; }
  [[nodiscard]] SearchService& fast_search() { return *fast_search_; }
  [[nodiscard]] proxy::BifrostProxy* product_proxy() {
    return product_proxy_.get();
  }
  [[nodiscard]] proxy::BifrostProxy* search_proxy() {
    return search_proxy_.get();
  }
  [[nodiscard]] metrics::TimeSeriesStore& metrics_store() { return store_; }

  /// One valid bearer token (a seeded user logged in during start()).
  [[nodiscard]] const std::string& auth_token() const { return token_; }

  // Strategy-building helpers -------------------------------------------
  /// ServiceDef for the product service with versions stable/a/b and the
  /// product proxy's admin endpoint (requires with_proxies).
  [[nodiscard]] core::ServiceDef product_service_def() const;
  /// ServiceDef for the search service with versions stable/fast.
  [[nodiscard]] core::ServiceDef search_service_def() const;
  /// Provider table entry pointing at the metrics server.
  [[nodiscard]] core::ProviderConfig prometheus_provider() const;

 private:
  void seed_data();

  AppOptions options_;
  bool started_ = false;

  runtime::EventLoop loop_;
  metrics::TimeSeriesStore store_;
  std::unique_ptr<metrics::MetricsServer> metrics_server_;
  std::unique_ptr<metrics::Scraper> scraper_;

  std::unique_ptr<DocStoreService> docstore_;
  std::unique_ptr<AuthService> auth_;
  std::unique_ptr<SearchService> search_;
  std::unique_ptr<SearchService> fast_search_;
  std::unique_ptr<ProductService> product_;
  std::unique_ptr<ProductService> product_a_;
  std::unique_ptr<ProductService> product_b_;
  std::unique_ptr<FrontendService> frontend_;
  std::unique_ptr<GatewayService> gateway_;
  std::unique_ptr<proxy::BifrostProxy> product_proxy_;
  std::unique_ptr<proxy::BifrostProxy> search_proxy_;
  std::string token_;
};

}  // namespace bifrost::casestudy
