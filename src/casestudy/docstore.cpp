#include "casestudy/docstore.hpp"

#include "http/router.hpp"

#include <thread>

namespace bifrost::casestudy {

std::string DocStore::insert(const std::string& collection,
                             json::Value document) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string id;
  if (const json::Value* existing = document.find("_id");
      existing != nullptr && existing->is_string()) {
    id = existing->as_string();
  } else {
    id = "d" + std::to_string(next_id_++);
    if (document.is_object()) document.as_object()["_id"] = id;
  }
  collections_[collection][id] = std::move(document);
  return id;
}

std::optional<json::Value> DocStore::get(const std::string& collection,
                                         const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto coll = collections_.find(collection);
  if (coll == collections_.end()) return std::nullopt;
  const auto doc = coll->second.find(id);
  if (doc == coll->second.end()) return std::nullopt;
  return doc->second;
}

std::vector<json::Value> DocStore::find(const std::string& collection,
                                        const std::string& field,
                                        const std::string& value) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<json::Value> out;
  const auto coll = collections_.find(collection);
  if (coll == collections_.end()) return out;
  for (const auto& [id, doc] : coll->second) {
    if (!field.empty()) {
      const json::Value* member = doc.find(field);
      if (member == nullptr || !member->is_string() ||
          member->as_string() != value) {
        continue;
      }
    }
    out.push_back(doc);
  }
  return out;
}

std::size_t DocStore::count(const std::string& collection) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto coll = collections_.find(collection);
  return coll == collections_.end() ? 0 : coll->second.size();
}

void DocStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  collections_.clear();
}

DocStoreService::DocStoreService(Options options) : options_(options) {
  http::HttpServer::Options server_options;
  server_options.port = options_.port;
  server_options.worker_threads = options_.workers;
  server_ = std::make_unique<http::HttpServer>(
      server_options,
      [this](const http::Request& req) { return handle(req); });
}

DocStoreService::~DocStoreService() { stop(); }

void DocStoreService::start() { server_->start(); }
void DocStoreService::stop() { server_->stop(); }
std::uint16_t DocStoreService::port() const { return server_->port(); }

http::Response DocStoreService::handle(const http::Request& request) {
  const std::vector<std::string> segments = http::split_path(request.path());
  if (request.path() == "/healthz") return http::Response::text(200, "ok\n");
  if (request.path() == "/metrics") {
    return http::Response::text(200, registry_.expose());
  }
  if (segments.empty() || segments[0] != "db") {
    return http::Response::not_found();
  }
  if (options_.base_delay.count() > 0) {
    std::this_thread::sleep_for(options_.base_delay);
  }
  registry_.counter("db_requests_total").increment();

  if (segments.size() == 2 && request.method == "POST") {
    auto doc = json::parse(request.body);
    if (!doc.ok()) return http::Response::bad_request(doc.error_message());
    const std::string id = store_.insert(segments[1], std::move(doc).value());
    return http::Response::json(
        201, json::Value(json::Object{{"_id", id}}).dump());
  }
  if (segments.size() == 3 && request.method == "GET") {
    const auto doc = store_.get(segments[1], segments[2]);
    if (!doc) return http::Response::not_found();
    return http::Response::json(200, doc->dump());
  }
  if (segments.size() == 2 && request.method == "GET") {
    const std::string field = request.query_param("field").value_or("");
    const std::string value = request.query_param("value").value_or("");
    json::Array docs;
    for (json::Value& doc : store_.find(segments[1], field, value)) {
      docs.push_back(std::move(doc));
    }
    return http::Response::json(200, json::Value(std::move(docs)).dump());
  }
  return http::Response::not_found();
}

}  // namespace bifrost::casestudy
