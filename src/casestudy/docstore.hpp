// In-memory document store behind an HTTP API — the MongoDB stand-in of
// the case-study deployment. Keeps the extra network hop of the paper's
// request paths (every product/search/auth request touches the DB).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "http/server.hpp"
#include "json/json.hpp"
#include "metrics/registry.hpp"

namespace bifrost::casestudy {

/// Thread-safe collection/document map.
class DocStore {
 public:
  /// Inserts a document; returns its assigned id. A document with an
  /// "_id" string member keeps that id (upsert).
  std::string insert(const std::string& collection, json::Value document);

  [[nodiscard]] std::optional<json::Value> get(const std::string& collection,
                                               const std::string& id) const;

  /// All documents of a collection, optionally filtered by equality on
  /// one string member.
  [[nodiscard]] std::vector<json::Value> find(
      const std::string& collection, const std::string& field = "",
      const std::string& value = "") const;

  [[nodiscard]] std::size_t count(const std::string& collection) const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::map<std::string, json::Value>> collections_;
  std::uint64_t next_id_ = 1;
};

/// HTTP face:
///   POST /db/{collection}          insert, body = JSON document
///   GET  /db/{collection}/{id}
///   GET  /db/{collection}[?field=&value=]
///   GET  /metrics, /healthz
class DocStoreService {
 public:
  struct Options {
    std::uint16_t port = 0;
    std::size_t workers = 4;
    std::chrono::milliseconds base_delay{2};
  };

  explicit DocStoreService(Options options);
  ~DocStoreService();

  void start();
  void stop();
  [[nodiscard]] std::uint16_t port() const;

  [[nodiscard]] DocStore& store() { return store_; }

 private:
  http::Response handle(const http::Request& request);

  Options options_;
  DocStore store_;
  metrics::Registry registry_;
  std::unique_ptr<http::HttpServer> server_;
};

}  // namespace bifrost::casestudy
