#include "casestudy/services.hpp"

#include <thread>

#include "http/router.hpp"
#include "http/url.hpp"
#include "json/json.hpp"
#include "util/strings.hpp"
#include "util/uuid.hpp"

namespace bifrost::casestudy {

CaseStudyService::CaseStudyService(ServiceBehavior behavior)
    : behavior_(std::move(behavior)),
      error_rate_(behavior_.error_rate),
      rng_(behavior_.rng_seed) {
  http::HttpServer::Options options;
  options.port = behavior_.port;
  options.worker_threads = behavior_.workers;
  server_ = std::make_unique<http::HttpServer>(
      options, [this](const http::Request& req) { return handle(req); });
}

CaseStudyService::~CaseStudyService() { stop(); }

void CaseStudyService::start() { server_->start(); }
void CaseStudyService::stop() { server_->stop(); }
std::uint16_t CaseStudyService::port() const { return server_->port(); }

http::Response CaseStudyService::handle(const http::Request& request) {
  if (request.path() == "/healthz") return http::Response::text(200, "ok\n");
  if (request.path() == "/metrics") {
    return http::Response::text(200, registry_.expose());
  }

  const auto started = std::chrono::steady_clock::now();

  // Processing-time emulation with jitter; occupies a bounded worker, so
  // queueing under overload emerges naturally.
  if (behavior_.base_delay.count() > 0) {
    double jitter = 0.0;
    if (behavior_.delay_jitter > 0.0) {
      const std::lock_guard<std::mutex> lock(rng_mutex_);
      jitter = rng_.uniform() * 2.0 - 1.0;
    }
    const auto delay = std::chrono::duration_cast<std::chrono::microseconds>(
        behavior_.base_delay *
        (1.0 + jitter * behavior_.delay_jitter));
    std::this_thread::sleep_for(delay);
  }

  registry_.counter("request_count", labels()).increment();

  // Error injection (used by rollback-scenario tests and benches).
  const double error_rate = error_rate_.load();
  bool inject_error = false;
  if (error_rate > 0.0) {
    const std::lock_guard<std::mutex> lock(rng_mutex_);
    inject_error = rng_.bernoulli(error_rate);
  }
  http::Response response =
      inject_error ? http::Response::text(500, "injected failure\n")
                   : serve(request);

  if (response.status >= 500) {
    registry_.counter("request_errors", labels()).increment();
  }
  if (response.status == 404) {
    registry_.counter("request_404", labels()).increment();
  }
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - started)
                                .count();
  registry_.counter("processing_time_ms_total", labels())
      .increment(elapsed_ms);
  return response;
}

// ---------------------------------------------------------------------------
// auth

AuthService::AuthService(ServiceBehavior behavior, Endpoint docstore)
    : CaseStudyService(std::move(behavior)), docstore_(docstore) {}

http::Response AuthService::serve(const http::Request& request) {
  const std::string path = request.path();
  if (path == "/login" && request.method == "POST") {
    auto body = json::parse(request.body);
    if (!body.ok()) return http::Response::bad_request(body.error_message());
    const std::string email = body.value().get_string("email");
    const std::string password = body.value().get_string("password");
    if (email.empty()) return http::Response::bad_request("missing email");

    // Validate credentials against the user collection in the DB.
    auto users = client_.get(docstore_.url("/db/users?field=email&value=" +
                                           http::url_encode(email)));
    if (!users.ok() || users.value().status != 200) {
      return http::Response::bad_gateway("user store unavailable");
    }
    auto docs = json::parse(users.value().body);
    if (!docs.ok() || !docs.value().is_array() ||
        docs.value().as_array().empty()) {
      return http::Response::text(401, "unknown user\n");
    }
    if (docs.value().as_array()[0].get_string("password") != password) {
      return http::Response::text(401, "bad credentials\n");
    }
    const std::string token = util::uuid4();
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_[token] = email;
    }
    registry().counter("logins_total", labels()).increment();
    return http::Response::json(
        200, json::Value(json::Object{{"token", token}}).dump());
  }
  if (path == "/validate" && request.method == "GET") {
    const auto header = request.headers.get("Authorization");
    if (!header || !util::starts_with(*header, "Bearer ")) {
      return http::Response::text(401, "missing bearer token\n");
    }
    const std::string token = header->substr(7);
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    const auto it = sessions_.find(token);
    if (it == sessions_.end()) {
      return http::Response::text(401, "invalid token\n");
    }
    return http::Response::json(
        200, json::Value(json::Object{{"email", it->second}}).dump());
  }
  return http::Response::not_found();
}

// ---------------------------------------------------------------------------
// search

SearchService::SearchService(ServiceBehavior behavior, Endpoint docstore)
    : CaseStudyService(std::move(behavior)), docstore_(docstore) {}

http::Response SearchService::serve(const http::Request& request) {
  if (request.path() != "/search" || request.method != "GET") {
    return http::Response::not_found();
  }
  const std::string query =
      util::to_lower(request.query_param("q").value_or(""));
  auto products = client_.get(docstore_.url("/db/products"));
  if (!products.ok() || products.value().status != 200) {
    return http::Response::bad_gateway("product store unavailable");
  }
  auto docs = json::parse(products.value().body);
  if (!docs.ok() || !docs.value().is_array()) {
    return http::Response::text(500, "corrupt product data\n");
  }
  json::Array hits;
  for (const json::Value& doc : docs.value().as_array()) {
    const std::string name = util::to_lower(doc.get_string("name"));
    if (query.empty() || name.find(query) != std::string::npos) {
      hits.push_back(doc);
    }
  }
  registry().counter("search_requests_total", labels()).increment();
  return http::Response::json(
      200, json::Value(json::Object{{"hits", std::move(hits)}}).dump());
}

// ---------------------------------------------------------------------------
// product

ProductService::ProductService(ServiceBehavior behavior, Dependencies deps,
                               double conversion)
    : CaseStudyService(std::move(behavior)),
      deps_(deps),
      conversion_(conversion) {}

void ProductService::set_search_endpoint(Endpoint endpoint) {
  const std::lock_guard<std::mutex> lock(deps_mutex_);
  deps_.search = endpoint;
}

bool ProductService::authorized(const http::Request& request) {
  const auto header = request.headers.get("Authorization");
  if (!header) return false;
  http::Request validate;
  validate.method = "GET";
  validate.target = "/validate";
  validate.headers.set("Authorization", *header);
  Endpoint auth;
  {
    const std::lock_guard<std::mutex> lock(deps_mutex_);
    auth = deps_.auth;
  }
  auto response = client_.request(std::move(validate), auth.host, auth.port);
  return response.ok() && response.value().status == 200;
}

http::Response ProductService::serve(const http::Request& request) {
  if (!authorized(request)) {
    return http::Response::text(401, "unauthorized\n");
  }
  const std::vector<std::string> segments = http::split_path(request.path());
  Endpoint docstore;
  Endpoint search;
  {
    const std::lock_guard<std::mutex> lock(deps_mutex_);
    docstore = deps_.docstore;
    search = deps_.search;
  }

  // Products: full catalog with buyers (large response body).
  if (segments.size() == 1 && segments[0] == "products" &&
      request.method == "GET") {
    auto products = client_.get(docstore.url("/db/products"));
    if (!products.ok() || products.value().status != 200) {
      return http::Response::bad_gateway("product store unavailable");
    }
    auto orders = client_.get(docstore.url("/db/orders"));
    json::Array order_docs;
    if (orders.ok() && orders.value().status == 200) {
      if (auto parsed = json::parse(orders.value().body);
          parsed.ok() && parsed.value().is_array()) {
        order_docs = parsed.value().as_array();
        // Join only the most recent orders (pagination): keeps the
        // response size bounded under sustained buy traffic.
        constexpr std::size_t kMaxJoinedOrders = 100;
        if (order_docs.size() > kMaxJoinedOrders) {
          order_docs.erase(order_docs.begin(),
                           order_docs.end() - kMaxJoinedOrders);
        }
      }
    }
    auto docs = json::parse(products.value().body);
    if (!docs.ok() || !docs.value().is_array()) {
      return http::Response::text(500, "corrupt product data\n");
    }
    json::Array out;
    for (json::Value& doc : docs.value().as_array()) {
      json::Array buyers;
      const std::string id = doc.get_string("_id");
      for (const json::Value& order : order_docs) {
        if (order.get_string("productId") == id) {
          buyers.push_back(order.get_string("buyer"));
        }
      }
      doc.as_object()["buyers"] = std::move(buyers);
      out.push_back(std::move(doc));
    }
    return http::Response::json(200, json::Value(std::move(out)).dump());
  }

  // Details: single product (small response body).
  if (segments.size() == 2 && segments[0] == "products" &&
      request.method == "GET") {
    auto doc = client_.get(docstore.url("/db/products/" + segments[1]));
    if (!doc.ok()) return http::Response::bad_gateway("product store down");
    if (doc.value().status != 200) return http::Response::not_found();
    return http::Response::json(200, doc.value().body);
  }

  // Buy: write an order (no response body, as in the paper's workload).
  if (segments.size() == 1 && segments[0] == "buy" &&
      request.method == "POST") {
    auto body = json::parse(request.body);
    const std::string product_id =
        body.ok() ? body.value().get_string("productId") : "";
    json::Object order{{"productId", product_id},
                       {"buyer", body.ok() ? body.value().get_string("buyer")
                                           : std::string{}},
                       {"version", behavior().version}};
    auto response = client_.post(docstore.url("/db/orders"),
                                 json::Value(std::move(order)).dump(),
                                 "application/json");
    if (!response.ok() || response.value().status != 201) {
      return http::Response::bad_gateway("order store unavailable");
    }
    // Conversion models the business-metric difference between variants
    // (an A/B variant that sells better records more sales per buy).
    registry().counter("sales_total", labels()).increment(conversion_);
    http::Response out;
    out.status = 204;
    return out;
  }

  // Search: delegate to the search service (possibly via its proxy).
  if (segments.size() == 1 && segments[0] == "search" &&
      request.method == "GET") {
    http::Request downstream;
    downstream.method = "GET";
    downstream.target = request.target;
    auto response =
        client_.request(std::move(downstream), search.host, search.port);
    if (!response.ok()) {
      return http::Response::bad_gateway("search unavailable: " +
                                         response.error_message());
    }
    return std::move(response).value();
  }

  return http::Response::not_found();
}

// ---------------------------------------------------------------------------
// frontend

FrontendService::FrontendService(ServiceBehavior behavior)
    : CaseStudyService(std::move(behavior)) {}

http::Response FrontendService::serve(const http::Request& request) {
  if (request.path() != "/") return http::Response::not_found();
  http::Response response;
  response.headers.set("Content-Type", "text/html");
  response.body =
      "<!doctype html><html><head><title>Bifrost Electronics</title></head>"
      "<body><h1>Bifrost Electronics</h1>"
      "<p>Consumer electronics case-study storefront.</p></body></html>";
  return response;
}

// ---------------------------------------------------------------------------
// gateway

GatewayService::GatewayService(ServiceBehavior behavior, Endpoint frontend,
                               Endpoint product)
    : CaseStudyService(std::move(behavior)),
      frontend_(frontend),
      product_(product) {}

void GatewayService::set_product_endpoint(Endpoint endpoint) {
  const std::lock_guard<std::mutex> lock(endpoint_mutex_);
  product_ = endpoint;
}

http::Response GatewayService::serve(const http::Request& request) {
  Endpoint target;
  {
    const std::lock_guard<std::mutex> lock(endpoint_mutex_);
    target = request.path() == "/" ? frontend_ : product_;
  }
  http::Request downstream = request;
  downstream.headers.set("Host",
                         target.host + ":" + std::to_string(target.port));
  auto response =
      client_.request(std::move(downstream), target.host, target.port);
  if (!response.ok()) {
    return http::Response::bad_gateway(response.error_message());
  }
  return std::move(response).value();
}

}  // namespace bifrost::casestudy
