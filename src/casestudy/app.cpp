#include "casestudy/app.hpp"

#include <stdexcept>

#include "http/client.hpp"

namespace bifrost::casestudy {

CaseStudyApp::CaseStudyApp(AppOptions options) : options_(options) {}

CaseStudyApp::~CaseStudyApp() { stop(); }

void CaseStudyApp::start() {
  if (started_) return;
  started_ = true;

  // Doc store first: everything else depends on it.
  DocStoreService::Options db_options;
  db_options.base_delay = std::chrono::duration_cast<std::chrono::milliseconds>(
      options_.db_delay);
  db_options.workers = options_.db_workers;
  docstore_ = std::make_unique<DocStoreService>(db_options);
  docstore_->start();
  const Endpoint db{"127.0.0.1", docstore_->port()};

  const auto behavior = [&](const std::string& service,
                            const std::string& version,
                            std::chrono::microseconds delay,
                            std::size_t workers) {
    ServiceBehavior b;
    b.service = service;
    b.version = version;
    b.base_delay = delay;
    b.workers = workers;
    b.rng_seed = options_.rng_seed;
    return b;
  };

  auth_ = std::make_unique<AuthService>(
      behavior("auth", "stable", options_.auth_delay, options_.auth_workers),
      db);
  auth_->start();
  const Endpoint auth{"127.0.0.1", auth_->port()};

  search_ = std::make_unique<SearchService>(
      behavior("search", "stable", options_.search_delay,
               options_.search_workers),
      db);
  search_->start();
  fast_search_ = std::make_unique<SearchService>(
      behavior("search", "fast", options_.fast_search_delay,
               options_.search_workers),
      db);
  fast_search_->start();

  // Search proxy sits in front of both search variants.
  Endpoint search_entry{"127.0.0.1", search_->port()};
  if (options_.with_proxies) {
    proxy::ProxyConfig initial;
    initial.service = "search";
    initial.backends.push_back(proxy::BackendTarget{
        "stable", "127.0.0.1", search_->port(), 100.0, "", ""});
    proxy::BifrostProxy::Options proxy_options;
    proxy_options.emulation_cost = options_.proxy_emulation_cost;
    proxy_options.rng_seed = options_.rng_seed + 1;
    search_proxy_ =
        std::make_unique<proxy::BifrostProxy>(proxy_options, initial);
    search_proxy_->start();
    search_entry = Endpoint{"127.0.0.1", search_proxy_->data_port()};
  }

  ProductService::Dependencies deps{db, auth, search_entry};
  product_ = std::make_unique<ProductService>(
      behavior("product", "stable", options_.product_delay,
               options_.product_workers),
      deps, 1.0);
  product_->start();
  product_a_ = std::make_unique<ProductService>(
      behavior("product", "a", options_.product_delay,
               options_.product_workers),
      deps, options_.product_a_conversion);
  product_a_->start();
  product_b_ = std::make_unique<ProductService>(
      behavior("product", "b", options_.product_delay,
               options_.product_workers),
      deps, options_.product_b_conversion);
  product_b_->start();

  Endpoint product_entry{"127.0.0.1", product_->port()};
  if (options_.with_proxies) {
    proxy::ProxyConfig initial;
    initial.service = "product";
    initial.backends.push_back(proxy::BackendTarget{
        "stable", "127.0.0.1", product_->port(), 100.0, "", ""});
    proxy::BifrostProxy::Options proxy_options;
    proxy_options.emulation_cost = options_.proxy_emulation_cost;
    proxy_options.rng_seed = options_.rng_seed + 2;
    product_proxy_ =
        std::make_unique<proxy::BifrostProxy>(proxy_options, initial);
    product_proxy_->start();
    product_entry = Endpoint{"127.0.0.1", product_proxy_->data_port()};
  }

  frontend_ = std::make_unique<FrontendService>(
      behavior("frontend", "stable", std::chrono::microseconds(500), 4));
  frontend_->start();

  gateway_ = std::make_unique<GatewayService>(
      behavior("nginx", "stable", std::chrono::microseconds(200), 16),
      Endpoint{"127.0.0.1", frontend_->port()}, product_entry);
  gateway_->start();

  // Metrics provider + scrape loop (Prometheus + cAdvisor stand-in).
  metrics_server_ = std::make_unique<metrics::MetricsServer>(store_);
  metrics_server_->start();
  loop_.start();
  scraper_ = std::make_unique<metrics::Scraper>(
      loop_, store_,
      std::chrono::duration_cast<runtime::Duration>(
          options_.scrape_interval));
  const auto target = [&](std::uint16_t port, const std::string& instance) {
    metrics::Scraper::Target t;
    t.port = port;
    t.host = "127.0.0.1";
    t.labels = {{"instance", instance}};
    scraper_->add_target(std::move(t));
  };
  target(docstore_->port(), "db");
  target(auth_->port(), "auth");
  target(search_->port(), "search:stable");
  target(fast_search_->port(), "search:fast");
  target(product_->port(), "product:stable");
  target(product_a_->port(), "product:a");
  target(product_b_->port(), "product:b");
  if (product_proxy_) target(product_proxy_->admin_port(), "proxy:product");
  if (search_proxy_) target(search_proxy_->admin_port(), "proxy:search");
  scraper_->start();

  seed_data();
}

void CaseStudyApp::stop() {
  if (!started_) return;
  started_ = false;
  if (scraper_) scraper_->stop();
  loop_.stop();
  if (metrics_server_) metrics_server_->stop();
  if (gateway_) gateway_->stop();
  if (frontend_) frontend_->stop();
  if (product_proxy_) product_proxy_->stop();
  if (search_proxy_) search_proxy_->stop();
  if (product_b_) product_b_->stop();
  if (product_a_) product_a_->stop();
  if (product_) product_->stop();
  if (fast_search_) fast_search_->stop();
  if (search_) search_->stop();
  if (auth_) auth_->stop();
  if (docstore_) docstore_->stop();
}

void CaseStudyApp::seed_data() {
  static const char* kNames[] = {
      "laptop", "phone", "tablet", "camera", "headphones", "monitor",
      "keyboard", "mouse", "router", "speaker", "charger", "drone",
      "printer", "webcam", "microphone", "ssd"};
  DocStore& store = docstore_->store();
  for (std::size_t i = 0; i < options_.seed_products; ++i) {
    const std::string name = kNames[i % (sizeof kNames / sizeof *kNames)];
    store.insert("products",
                 json::Object{{"_id", "p" + std::to_string(i + 1)},
                              {"name", name + "-" + std::to_string(i + 1)},
                              {"price", 10.0 + 5.0 * static_cast<double>(i)}});
  }
  for (std::size_t i = 0; i < options_.seed_users; ++i) {
    store.insert("users",
                 json::Object{{"email", "user" + std::to_string(i + 1) +
                                            "@example.com"},
                              {"password", "secret"}});
  }

  // Log one user in so benches/tests have a valid bearer token.
  http::HttpClient client;
  auto response = client.post(
      Endpoint{"127.0.0.1", auth_->port()}.url("/login"),
      json::Value(json::Object{{"email", "user1@example.com"},
                               {"password", "secret"}})
          .dump(),
      "application/json");
  if (!response.ok() || response.value().status != 200) {
    throw std::runtime_error("case study: login during seed failed");
  }
  auto doc = json::parse(response.value().body);
  token_ = doc.ok() ? doc.value().get_string("token") : "";
  if (token_.empty()) {
    throw std::runtime_error("case study: no token from auth service");
  }
}

Endpoint CaseStudyApp::gateway_endpoint() const {
  return Endpoint{"127.0.0.1", gateway_->port()};
}

Endpoint CaseStudyApp::product_entry() const {
  if (product_proxy_) {
    return Endpoint{"127.0.0.1", product_proxy_->data_port()};
  }
  return Endpoint{"127.0.0.1", product_->port()};
}

Endpoint CaseStudyApp::metrics_endpoint() const {
  return Endpoint{"127.0.0.1", metrics_server_->port()};
}

core::ServiceDef CaseStudyApp::product_service_def() const {
  core::ServiceDef service;
  service.name = "product";
  service.versions = {
      core::VersionDef{"stable", "127.0.0.1", product_->port()},
      core::VersionDef{"a", "127.0.0.1", product_a_->port()},
      core::VersionDef{"b", "127.0.0.1", product_b_->port()},
  };
  if (product_proxy_) {
    service.proxy_admin_host = "127.0.0.1";
    service.proxy_admin_port = product_proxy_->admin_port();
  }
  return service;
}

core::ServiceDef CaseStudyApp::search_service_def() const {
  core::ServiceDef service;
  service.name = "search";
  service.versions = {
      core::VersionDef{"stable", "127.0.0.1", search_->port()},
      core::VersionDef{"fast", "127.0.0.1", fast_search_->port()},
  };
  if (search_proxy_) {
    service.proxy_admin_host = "127.0.0.1";
    service.proxy_admin_port = search_proxy_->admin_port();
  }
  return service;
}

core::ProviderConfig CaseStudyApp::prometheus_provider() const {
  return core::ProviderConfig{"127.0.0.1", metrics_server_->port()};
}

}  // namespace bifrost::casestudy
