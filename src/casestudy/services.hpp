// The case-study microservices (paper §5.1.1): auth, search (stable and
// fastSearch variants), product (stable plus A/B variants), frontend,
// and the nginx-style gateway. Each service is an HTTP server with a
// configurable processing delay, bounded worker concurrency (so load
// effects — queueing under dark-launch duplication, relief under A/B
// splitting — emerge naturally), optional error injection, and a
// Prometheus-style /metrics endpoint.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "http/client.hpp"
#include "http/server.hpp"
#include "metrics/registry.hpp"
#include "util/rng.hpp"

namespace bifrost::casestudy {

/// Host:port of a dependency (settable, so traffic can be pointed at a
/// Bifrost proxy instead of the service itself).
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string url(const std::string& path) const {
    return "http://" + host + ":" + std::to_string(port) + path;
  }
};

/// Behaviour knobs shared by all case-study services.
struct ServiceBehavior {
  std::string service;   ///< metrics label, e.g. "product"
  std::string version;   ///< metrics label, e.g. "stable" / "a" / "b"
  std::uint16_t port = 0;
  std::size_t workers = 4;  ///< concurrency bound (queueing under load)
  std::chrono::microseconds base_delay{5000};
  double delay_jitter = 0.2;  ///< +- fraction of base_delay, uniform
  double error_rate = 0.0;    ///< fraction of injected HTTP 500s
  std::uint64_t rng_seed = 1;
};

/// Common plumbing: server lifecycle, delay/error injection, metrics.
class CaseStudyService {
 public:
  explicit CaseStudyService(ServiceBehavior behavior);
  virtual ~CaseStudyService();

  void start();
  void stop();
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] const ServiceBehavior& behavior() const { return behavior_; }

  void set_error_rate(double rate) { error_rate_.store(rate); }

 protected:
  /// Subclass request handling after delay/error injection.
  virtual http::Response serve(const http::Request& request) = 0;

  metrics::Registry& registry() { return registry_; }
  [[nodiscard]] metrics::Labels labels() const {
    return {{"service", behavior_.service}, {"version", behavior_.version}};
  }

 private:
  http::Response handle(const http::Request& request);

  ServiceBehavior behavior_;
  std::atomic<double> error_rate_;
  metrics::Registry registry_;
  std::mutex rng_mutex_;
  util::Rng rng_;
  std::unique_ptr<http::HttpServer> server_;
};

/// auth: POST /login {email, password} -> {token}; GET /validate
/// (Authorization: Bearer <token>). Users live in the doc store.
class AuthService final : public CaseStudyService {
 public:
  AuthService(ServiceBehavior behavior, Endpoint docstore);

 protected:
  http::Response serve(const http::Request& request) override;

 private:
  Endpoint docstore_;
  http::HttpClient client_;
  std::mutex sessions_mutex_;
  std::unordered_map<std::string, std::string> sessions_;  // token -> email
};

/// search: GET /search?q= over the product catalog in the doc store.
/// The fastSearch variant is the same service with a smaller base_delay.
class SearchService final : public CaseStudyService {
 public:
  SearchService(ServiceBehavior behavior, Endpoint docstore);

 protected:
  http::Response serve(const http::Request& request) override;

 private:
  Endpoint docstore_;
  http::HttpClient client_;
};

/// product: GET /products, GET /products/{id}, POST /buy,
/// GET /search?q= (delegates to the search dependency). Every request is
/// authorized against the auth dependency. `conversion` scales the
/// sales metric (the business-metric difference between A/B variants).
class ProductService final : public CaseStudyService {
 public:
  struct Dependencies {
    Endpoint docstore;
    Endpoint auth;
    Endpoint search;
  };

  ProductService(ServiceBehavior behavior, Dependencies deps,
                 double conversion = 1.0);

  /// Re-points the search dependency (e.g. at a Bifrost proxy).
  void set_search_endpoint(Endpoint endpoint);

 protected:
  http::Response serve(const http::Request& request) override;

 private:
  [[nodiscard]] bool authorized(const http::Request& request);

  Dependencies deps_;
  std::mutex deps_mutex_;
  double conversion_;
  http::HttpClient client_;
};

/// frontend: GET / returns the storefront page.
class FrontendService final : public CaseStudyService {
 public:
  explicit FrontendService(ServiceBehavior behavior);

 protected:
  http::Response serve(const http::Request& request) override;
};

/// gateway (nginx stand-in): "/" -> frontend, everything else ->
/// the product entry point (directly, or via a Bifrost proxy).
class GatewayService final : public CaseStudyService {
 public:
  GatewayService(ServiceBehavior behavior, Endpoint frontend,
                 Endpoint product);

  void set_product_endpoint(Endpoint endpoint);

 protected:
  http::Response serve(const http::Request& request) override;

 private:
  Endpoint frontend_;
  Endpoint product_;
  std::mutex endpoint_mutex_;
  http::HttpClient client_;
};

}  // namespace bifrost::casestudy
