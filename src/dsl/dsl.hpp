// The Bifrost domain-specific language (paper §4.2.2): YAML documents
// with a `strategy` part (states, checks, routes) and a `deployment`
// part (services, versions, proxies, providers), compiled into the
// formal model (core::StrategyDef).
//
// Shapes supported under `checks:`/`routes:` include the paper's
// Listing 1 (`metric` element with providers/intervalTime/intervalLimit/
// threshold/validator) and Listing 2 (`route` with from/to and a
// `traffic` filter with percentage/shadow/intervalTime), plus richer
// forms and a `rollout` macro that expands into the chain of gradual-
// rollout states. See docs in README.md and the strategies under
// examples/strategies/.
//
// Example:
//
//   strategy:
//     name: fastsearch-rollout
//     initial: canary
//     states:
//       - state:
//           name: canary
//           duration: 60
//           onSuccess: ab-test
//           onFailure: rollback
//           checks:
//             - metric:
//                 providers:
//                   - prometheus:
//                       name: search_error
//                       query: request_errors{instance="search:80"}
//                 intervalTime: 5
//                 intervalLimit: 12
//                 threshold: 12
//                 validator: "<5"
//           routes:
//             - route:
//                 service: search
//                 split:
//                   - version: stable
//                     percent: 95
//                   - version: canary
//                     percent: 5
//       ...
//   deployment:
//     providers:
//       prometheus: { host: localhost, port: 9090 }
//     services:
//       - service:
//           name: search
//           proxy: { adminHost: localhost, adminPort: 8101 }
//           versions:
//             - version: { name: stable, host: localhost, port: 8001 }
//             - version: { name: canary, host: localhost, port: 8002 }
#pragma once

#include <string>

#include "core/model.hpp"
#include "util/result.hpp"
#include "yaml/yaml.hpp"

namespace bifrost::dsl {

/// Compiles DSL text into the formal model. The result additionally
/// passes core::validate() when this returns success.
util::Result<core::StrategyDef> compile(const std::string& yaml_text);

/// Compiles an already-parsed YAML document.
util::Result<core::StrategyDef> compile(const yaml::Node& root);

/// Reads and compiles a strategy file.
util::Result<core::StrategyDef> compile_file(const std::string& path);

}  // namespace bifrost::dsl
