#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "dsl/dsl.hpp"
#include "util/strings.hpp"

namespace bifrost::dsl {
namespace {

using core::CheckDef;
using core::CheckKind;
using core::FinalKind;
using core::MetricCondition;
using core::RoutingMode;
using core::ServiceRouting;
using core::ShadowRule;
using core::StateDef;
using core::StrategyDef;
using core::Validator;
using core::VersionSplit;
using util::Result;

class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what)
      : std::runtime_error("dsl: " + what) {}
};

[[noreturn]] void fail(const std::string& what) { throw CompileError(what); }

runtime::Duration seconds(double s) {
  return std::chrono::duration_cast<runtime::Duration>(
      std::chrono::duration<double>(s));
}

/// Unwraps the common "- key:\n    ..." sequence-item shape: a mapping
/// with a single entry whose key is `expected`. Items may also be bare
/// mappings (without the wrapper key).
const yaml::Node& unwrap(const yaml::Node& item, const std::string& expected) {
  if (!item.is_mapping()) fail("expected a mapping for '" + expected + "'");
  if (item.entries().size() == 1 && item.entries()[0].first == expected &&
      item.entries()[0].second.is_mapping()) {
    return item.entries()[0].second;
  }
  return item;
}

double require_number(const yaml::Node& node, const std::string& key,
                      const std::string& where) {
  const yaml::Node* child = node.find(key);
  if (child == nullptr) fail(where + ": missing '" + key + "'");
  const auto value = child->as_double();
  if (!value) fail(where + ": '" + key + "' must be a number");
  return *value;
}

std::string require_string(const yaml::Node& node, const std::string& key,
                           const std::string& where) {
  const yaml::Node* child = node.find(key);
  if (child == nullptr || !child->is_scalar() || child->as_string().empty()) {
    fail(where + ": missing '" + key + "'");
  }
  return child->as_string();
}

// ---------------------------------------------------------------------------
// Checks

Validator parse_validator(const std::string& text, const std::string& where) {
  auto v = Validator::parse(text);
  if (!v.ok()) fail(where + ": " + v.error_message());
  return std::move(v).value();
}

/// Cross-region aggregation keys on a condition: `aggregate: max|min|
/// mean|delta` fans the query out over `aggregateService`'s regions
/// ("$region" in the query is replaced per region).
void parse_aggregate(const yaml::Node& body, MetricCondition& condition,
                     const std::string& where) {
  const std::string aggregate = body.get_string("aggregate");
  if (aggregate.empty()) return;
  if (aggregate == "max") {
    condition.aggregate = core::RegionAggregate::kMax;
  } else if (aggregate == "min") {
    condition.aggregate = core::RegionAggregate::kMin;
  } else if (aggregate == "mean") {
    condition.aggregate = core::RegionAggregate::kMean;
  } else if (aggregate == "delta") {
    condition.aggregate = core::RegionAggregate::kDelta;
  } else {
    fail(where + ": unknown aggregate '" + aggregate +
         "' (want max, min, mean, or delta)");
  }
  condition.region_service = require_string(body, "aggregateService", where);
}

/// Conditions from the paper's `providers:` list (Listing 1): each item
/// is `- <providerName>: {name, query, validator?}`.
std::vector<MetricCondition> parse_provider_conditions(
    const yaml::Node& providers, const std::optional<Validator>& fallback,
    const std::string& where) {
  std::vector<MetricCondition> out;
  if (!providers.is_sequence()) fail(where + ": 'providers' must be a list");
  for (const yaml::Node& item : providers.items()) {
    if (!item.is_mapping() || item.entries().size() != 1) {
      fail(where + ": each providers item must be '- <provider>: {...}'");
    }
    const auto& [provider_name, body] = item.entries()[0];
    MetricCondition condition;
    condition.provider = provider_name;
    condition.alias = body.get_string("name");
    condition.query = require_string(body, "query", where);
    if (const yaml::Node* v = body.find("validator"); v != nullptr) {
      condition.validator = parse_validator(v->as_string(), where);
    } else if (fallback) {
      condition.validator = *fallback;
    } else {
      fail(where + ": metric '" + condition.alias + "' has no validator");
    }
    condition.fail_on_no_data = body.get_bool("failOnNoData", true);
    parse_aggregate(body, condition, where);
    out.push_back(std::move(condition));
  }
  return out;
}

/// Richer `metrics:` list form: `- metric: {provider, name, query,
/// validator, failOnNoData}` or bare mappings.
std::vector<MetricCondition> parse_metric_conditions(
    const yaml::Node& metrics, const std::optional<Validator>& fallback,
    const std::string& where) {
  std::vector<MetricCondition> out;
  if (!metrics.is_sequence()) fail(where + ": 'metrics' must be a list");
  for (const yaml::Node& item : metrics.items()) {
    const yaml::Node& body = unwrap(item, "metric");
    MetricCondition condition;
    condition.provider = body.get_string("provider", "prometheus");
    condition.alias = body.get_string("name");
    condition.query = require_string(body, "query", where);
    if (const yaml::Node* v = body.find("validator"); v != nullptr) {
      condition.validator = parse_validator(v->as_string(), where);
    } else if (fallback) {
      condition.validator = *fallback;
    } else {
      fail(where + ": metric '" + condition.alias + "' has no validator");
    }
    condition.fail_on_no_data = body.get_bool("failOnNoData", true);
    parse_aggregate(body, condition, where);
    out.push_back(std::move(condition));
  }
  return out;
}

CheckDef parse_check(const yaml::Node& item, int index,
                     const std::string& state_name) {
  // Accept both `- check: {...}` and the paper's `- metric: {...}`.
  const yaml::Node* body = nullptr;
  bool paper_metric_shape = false;
  if (item.is_mapping() && item.entries().size() == 1) {
    const auto& [key, value] = item.entries()[0];
    if (key == "metric") {
      body = &value;
      paper_metric_shape = true;
    } else if (key == "check") {
      body = &value;
    }
  }
  if (body == nullptr) body = &item;

  const std::string default_name =
      state_name + "-check-" + std::to_string(index + 1);
  CheckDef check;
  check.name = body->get_string("name", default_name);
  const std::string where = "state '" + state_name + "' check '" +
                            check.name + "'";

  const std::string type = body->get_string("type", "basic");
  if (type == "basic") {
    check.kind = CheckKind::kBasic;
  } else if (type == "exception") {
    check.kind = CheckKind::kException;
    check.fallback_state = require_string(*body, "fallback", where);
    // Exception checks guard via immediate fallback; by default they do
    // not contribute to the state outcome (weight 0), so onSuccess/
    // onFailure sugar keeps counting only basic checks.
    check.weight = 0.0;
  } else {
    fail(where + ": unknown check type '" + type + "'");
  }

  check.interval = seconds(body->get_double("intervalTime", 5.0));
  check.executions =
      static_cast<int>(body->get_int("intervalLimit", 1));

  std::optional<Validator> fallback_validator;
  if (const yaml::Node* v = body->find("validator"); v != nullptr) {
    fallback_validator = parse_validator(v->as_string(), where);
  }
  if (const yaml::Node* providers = body->find("providers");
      providers != nullptr) {
    check.conditions =
        parse_provider_conditions(*providers, fallback_validator, where);
  } else if (const yaml::Node* metrics = body->find("metrics");
             metrics != nullptr) {
    check.conditions =
        parse_metric_conditions(*metrics, fallback_validator, where);
  } else if (paper_metric_shape && body->has("query")) {
    // Compact Listing-1 variant: query directly on the metric element.
    MetricCondition condition;
    condition.provider = body->get_string("provider", "prometheus");
    condition.alias = body->get_string("name");
    condition.query = require_string(*body, "query", where);
    if (!fallback_validator) fail(where + ": missing validator");
    condition.validator = *fallback_validator;
    condition.fail_on_no_data = body->get_bool("failOnNoData", true);
    parse_aggregate(*body, condition, where);
    check.conditions.push_back(std::move(condition));
  } else {
    fail(where + ": needs 'providers', 'metrics', or a 'query'");
  }

  if (check.kind == CheckKind::kBasic) {
    if (const yaml::Node* thresholds = body->find("thresholds");
        thresholds != nullptr) {
      // Full-model form: explicit thresholds + outputs (Out_c).
      if (!thresholds->is_sequence()) {
        fail(where + ": 'thresholds' must be a list");
      }
      for (const yaml::Node& t : thresholds->items()) {
        const auto value = t.as_double();
        if (!value) fail(where + ": threshold must be a number");
        check.thresholds.push_back(*value);
      }
      const yaml::Node* outputs = body->find("outputs");
      if (outputs == nullptr || !outputs->is_sequence()) {
        fail(where + ": 'thresholds' needs a matching 'outputs' list");
      }
      for (const yaml::Node& o : outputs->items()) {
        const auto value = o.as_int();
        if (!value) fail(where + ": output must be an integer");
        check.outputs.push_back(static_cast<int>(*value));
      }
    } else {
      // Simplified form (paper's current DSL): one `threshold` counting
      // required successful executions; outcome is boolean 0/1.
      const double threshold = body->get_double(
          "threshold", static_cast<double>(check.executions));
      check.thresholds = {threshold - 0.5};
      check.outputs = {0, 1};
    }
    check.weight = body->get_double("weight", 1.0);
  } else if (body->has("weight")) {
    check.weight = body->get_double("weight", 0.0);
  }
  return check;
}

// ---------------------------------------------------------------------------
// Routes

/// Paper Listing-2 `filters` shape on a route with scalar from/to.
void apply_traffic_filters(const yaml::Node& filters, const std::string& from,
                           const std::string& to, ServiceRouting& routing,
                           StateDef& state, const std::string& where) {
  if (!filters.is_sequence()) fail(where + ": 'filters' must be a list");
  for (const yaml::Node& item : filters.items()) {
    const yaml::Node& body = unwrap(item, "traffic");
    const double percentage = body.get_double("percentage", 100.0);
    const bool shadow = body.get_bool("shadow", false);
    if (const yaml::Node* interval = body.find("intervalTime");
        interval != nullptr) {
      const auto value = interval->as_double();
      if (!value) fail(where + ": 'intervalTime' must be a number");
      state.min_duration = std::max(state.min_duration, seconds(*value));
    }
    if (shadow) {
      // Duplicate `percentage` percent of `from` traffic onto `to`.
      routing.splits.push_back(VersionSplit{from, 100.0, "", ""});
      routing.shadows.push_back(ShadowRule{from, to, percentage});
    } else {
      routing.splits.push_back(
          VersionSplit{from, 100.0 - percentage, "", ""});
      routing.splits.push_back(VersionSplit{to, percentage, "", ""});
    }
  }
}

ServiceRouting parse_route(const yaml::Node& item, StateDef& state,
                           const std::string& state_name) {
  const yaml::Node& body = unwrap(item, "route");
  const std::string where = "state '" + state_name + "' route";

  ServiceRouting routing;
  const std::string from = body.get_string("from");
  routing.service = body.get_string("service", from);
  if (routing.service.empty()) {
    fail(where + ": needs 'service' (or 'from')");
  }

  const std::string mode = body.get_string("mode", "cookie");
  if (mode == "cookie") {
    routing.mode = RoutingMode::kCookie;
  } else if (mode == "header") {
    routing.mode = RoutingMode::kHeader;
  } else {
    fail(where + ": unknown mode '" + mode + "'");
  }
  routing.sticky = body.get_bool("sticky", false);

  // Region scope for federated services: `regions: [eu-west]` pushes
  // this config to the named regions only (the rest of the fleet keeps
  // its previous config) — the building block of region-by-region ramps.
  if (const yaml::Node* regions = body.find("regions"); regions != nullptr) {
    if (!regions->is_sequence()) fail(where + ": 'regions' must be a list");
    for (const yaml::Node& region : regions->items()) {
      if (!region.is_scalar() || region.as_string().empty()) {
        fail(where + ": region names must be strings");
      }
      routing.regions.push_back(region.as_string());
    }
  }

  // Experiment scoping ("5% of US users"): `filter` with header/value
  // plus the default version for everyone outside the population.
  if (const yaml::Node* filter = body.find("filter"); filter != nullptr) {
    routing.filter.header = require_string(*filter, "header", where);
    routing.filter.value = require_string(*filter, "value", where);
    routing.filter.default_version =
        require_string(*filter, "default", where);
  }

  if (const yaml::Node* filters = body.find("filters"); filters != nullptr) {
    const std::string to = require_string(body, "to", where);
    const std::string source = body.get_string("from", "stable");
    apply_traffic_filters(*filters, source, to, routing, state, where);
    // Merge duplicate split entries the filter form can produce.
    std::vector<VersionSplit> merged;
    for (const VersionSplit& split : routing.splits) {
      bool found = false;
      for (VersionSplit& m : merged) {
        if (m.version == split.version) {
          m.percent = std::min(100.0, m.percent + split.percent);
          found = true;
          break;
        }
      }
      if (!found) merged.push_back(split);
    }
    // Shadow filters push the full-traffic source split; drop zero-
    // percent leftovers from mixed forms.
    std::erase_if(merged,
                  [](const VersionSplit& s) { return s.percent <= 0.0; });
    routing.splits = std::move(merged);
    return routing;
  }

  if (const yaml::Node* split = body.find("split"); split != nullptr) {
    if (!split->is_sequence()) fail(where + ": 'split' must be a list");
    for (const yaml::Node& entry : split->items()) {
      const yaml::Node& split_body = unwrap(entry, "version");
      VersionSplit version_split;
      version_split.version =
          split_body.is_scalar() ? split_body.as_string()
                                 : require_string(split_body, "version", where);
      version_split.percent = split_body.is_mapping()
                                  ? split_body.get_double("percent", 0.0)
                                  : 0.0;
      version_split.match_header = split_body.is_mapping()
                                       ? split_body.get_string("matchHeader")
                                       : "";
      version_split.match_value = split_body.is_mapping()
                                      ? split_body.get_string("matchValue")
                                      : "";
      routing.splits.push_back(std::move(version_split));
    }
  }
  if (const yaml::Node* shadows = body.find("shadows"); shadows != nullptr) {
    if (!shadows->is_sequence()) fail(where + ": 'shadows' must be a list");
    for (const yaml::Node& entry : shadows->items()) {
      const yaml::Node& shadow_body = unwrap(entry, "shadow");
      ShadowRule rule;
      rule.source_version = require_string(shadow_body, "from", where);
      rule.target_version = require_string(shadow_body, "to", where);
      rule.percent = shadow_body.get_double("percent", 100.0);
      routing.shadows.push_back(std::move(rule));
    }
  }
  if (routing.splits.empty() && routing.shadows.empty()) {
    fail(where + ": needs 'split', 'shadows', or 'filters'");
  }
  return routing;
}

// ---------------------------------------------------------------------------
// States

StateDef parse_state(const yaml::Node& body) {
  StateDef state;
  state.name = require_string(body, "name", "state");
  const std::string where = "state '" + state.name + "'";

  if (const yaml::Node* final_node = body.find("final");
      final_node != nullptr) {
    const std::string kind = final_node->as_string();
    if (kind == "success") {
      state.final_kind = FinalKind::kSuccess;
    } else if (kind == "rollback") {
      state.final_kind = FinalKind::kRollback;
    } else {
      fail(where + ": 'final' must be success or rollback");
    }
  }

  if (const yaml::Node* duration = body.find("duration"); duration != nullptr) {
    const auto value = duration->as_double();
    if (!value || *value < 0.0) fail(where + ": invalid 'duration'");
    state.min_duration = std::max(state.min_duration, seconds(*value));
  }

  if (const yaml::Node* checks = body.find("checks"); checks != nullptr) {
    if (!checks->is_sequence()) fail(where + ": 'checks' must be a list");
    int index = 0;
    for (const yaml::Node& item : checks->items()) {
      state.checks.push_back(parse_check(item, index++, state.name));
    }
  }

  if (const yaml::Node* routes = body.find("routes"); routes != nullptr) {
    if (!routes->is_sequence()) fail(where + ": 'routes' must be a list");
    for (const yaml::Node& item : routes->items()) {
      state.routing.push_back(parse_route(item, state, state.name));
    }
  }

  if (state.is_final()) {
    if (body.has("transitions") || body.has("onSuccess") ||
        body.has("onFailure") || body.has("next")) {
      fail(where + ": final states cannot have transitions");
    }
    return state;
  }

  // Transitions: explicit thresholds+transitions, or sugar.
  if (const yaml::Node* transitions = body.find("transitions");
      transitions != nullptr) {
    if (!transitions->is_sequence()) {
      fail(where + ": 'transitions' must be a list");
    }
    for (const yaml::Node& t : transitions->items()) {
      state.transitions.push_back(t.as_string());
    }
    if (const yaml::Node* thresholds = body.find("thresholds");
        thresholds != nullptr) {
      if (!thresholds->is_sequence()) {
        fail(where + ": 'thresholds' must be a list");
      }
      for (const yaml::Node& t : thresholds->items()) {
        const auto value = t.as_double();
        if (!value) fail(where + ": state threshold must be a number");
        state.thresholds.push_back(*value);
      }
    }
    return state;
  }

  const std::string on_success =
      body.get_string("onSuccess", body.get_string("next"));
  const std::string on_failure = body.get_string("onFailure");
  if (on_success.empty()) {
    fail(where + ": needs 'transitions', 'onSuccess', or 'next'");
  }
  double basic_checks = 0.0;
  for (const CheckDef& check : state.checks) {
    if (check.kind == CheckKind::kBasic) basic_checks += 1.0;
  }
  if (on_failure.empty() || basic_checks == 0.0) {
    // Unconditional transition (timer-only states, e.g. dark launches).
    state.transitions = {on_success};
  } else {
    // Success iff every basic check passed (outcome == #basic checks).
    state.thresholds = {basic_checks - 0.5};
    state.transitions = {on_failure, on_success};
  }
  return state;
}

// ---------------------------------------------------------------------------
// Rollout macro

/// Expands `rollout` into the chain of gradual-release states
/// (paper Fig. 1: "increase traffic to the new version in 5% steps").
std::vector<StateDef> expand_rollout(const yaml::Node& body) {
  const std::string name = require_string(body, "name", "rollout");
  const std::string where = "rollout '" + name + "'";
  const std::string service = require_string(body, "service", where);
  const std::string from = require_string(body, "from", where);
  const std::string to = require_string(body, "to", where);
  const double start = body.get_double("startPercent", 5.0);
  const double end = body.get_double("endPercent", 100.0);
  const double step = body.get_double("stepPercent", 5.0);
  const double step_duration = require_number(body, "stepDuration", where);
  const std::string on_complete = require_string(body, "onComplete", where);
  const std::string on_failure = body.get_string("onFailure");
  const bool sticky = body.get_bool("sticky", false);
  if (step <= 0.0 || start <= 0.0 || end > 100.0 || start > end) {
    fail(where + ": need 0 < startPercent <= endPercent <= 100, step > 0");
  }

  // Optional checks template re-instantiated in every step.
  std::vector<yaml::Node> check_nodes;
  if (const yaml::Node* checks = body.find("checks"); checks != nullptr) {
    if (!checks->is_sequence()) fail(where + ": 'checks' must be a list");
    for (const yaml::Node& item : checks->items()) check_nodes.push_back(item);
  }

  std::vector<StateDef> states;
  std::vector<double> percents;
  for (double p = start; p < end + 1e-9; p += step) {
    percents.push_back(std::min(p, 100.0));
  }
  for (std::size_t i = 0; i < percents.size(); ++i) {
    StateDef state;
    const long long pct = std::llround(percents[i]);
    state.name = name + "-" + std::to_string(pct);
    state.min_duration = seconds(step_duration);

    ServiceRouting routing;
    routing.service = service;
    routing.sticky = sticky;
    if (percents[i] >= 100.0 - 1e-9) {
      routing.splits.push_back(VersionSplit{to, 100.0, "", ""});
    } else {
      routing.splits.push_back(
          VersionSplit{from, 100.0 - percents[i], "", ""});
      routing.splits.push_back(VersionSplit{to, percents[i], "", ""});
    }
    state.routing.push_back(std::move(routing));

    int check_index = 0;
    double basic_checks = 0.0;
    for (const yaml::Node& item : check_nodes) {
      CheckDef check = parse_check(item, check_index++, state.name);
      if (check.kind == CheckKind::kBasic) basic_checks += 1.0;
      state.checks.push_back(std::move(check));
    }

    const std::string next =
        i + 1 < percents.size()
            ? name + "-" + std::to_string(std::llround(percents[i + 1]))
            : on_complete;
    if (!on_failure.empty() && basic_checks > 0.0) {
      state.thresholds = {basic_checks - 0.5};
      state.transitions = {on_failure, next};
    } else {
      state.transitions = {next};
    }
    states.push_back(std::move(state));
  }
  return states;
}

// ---------------------------------------------------------------------------
// Resilience: `retry:` / `circuitBreaker:` blocks on providers and
// services (see docs/RESILIENCE.md). A present block opts in; field
// defaults are chosen so the smallest useful block (`retry: {}`)
// behaves sensibly.

core::RetryPolicy parse_retry(const yaml::Node& node,
                              const std::string& where) {
  if (!node.is_mapping()) fail(where + ": 'retry' must be a mapping");
  core::RetryPolicy retry;
  retry.max_attempts = static_cast<int>(node.get_int("maxAttempts", 3));
  retry.initial_backoff = seconds(node.get_double("initialBackoff", 0.2));
  retry.multiplier = node.get_double("multiplier", 2.0);
  retry.max_backoff = seconds(node.get_double("maxBackoff", 30.0));
  retry.jitter = node.get_double("jitter", 0.0);
  retry.attempt_timeout = seconds(node.get_double("attemptTimeout", 0.0));
  return retry;
}

core::CircuitBreakerPolicy parse_circuit_breaker(const yaml::Node& node,
                                                 const std::string& where) {
  if (!node.is_mapping()) fail(where + ": 'circuitBreaker' must be a mapping");
  core::CircuitBreakerPolicy breaker;
  breaker.enabled = true;
  breaker.failure_threshold =
      static_cast<int>(node.get_int("failureThreshold", 5));
  breaker.open_duration = seconds(node.get_double("openDuration", 30.0));
  breaker.half_open_probes =
      static_cast<int>(node.get_int("halfOpenProbes", 1));
  return breaker;
}

template <typename ConfigT>
void parse_resilience(const yaml::Node& body, const std::string& where,
                      ConfigT& config) {
  if (const yaml::Node* retry = body.find("retry"); retry != nullptr) {
    config.retry = parse_retry(*retry, where);
  }
  const yaml::Node* breaker = body.find("circuitBreaker");
  if (breaker == nullptr) breaker = body.find("circuit_breaker");
  if (breaker != nullptr) {
    config.circuit_breaker = parse_circuit_breaker(*breaker, where);
  }
}

/// `overload:` block on a service (see docs/DSL.md): admission control,
/// shadow shedding, and outlier ejection knobs for the service's proxy.
/// A present block opts in; every field defaults to the OverloadPolicy
/// default so `overload: { maxConcurrency: 64 }` is a complete config.
core::OverloadPolicy parse_overload(const yaml::Node& node,
                                    const std::string& where) {
  if (!node.is_mapping()) fail(where + ": 'overload' must be a mapping");
  core::OverloadPolicy overload;
  overload.enabled = true;
  overload.max_concurrency = static_cast<int>(
      node.get_int("maxConcurrency", overload.max_concurrency));
  overload.adaptive = node.get_bool("adaptive", overload.adaptive);
  overload.min_concurrency = static_cast<int>(
      node.get_int("minConcurrency", overload.min_concurrency));
  overload.latency_inflation =
      node.get_double("latencyInflation", overload.latency_inflation);
  overload.adapt_window =
      static_cast<int>(node.get_int("adaptWindow", overload.adapt_window));
  overload.shadow_queue =
      static_cast<int>(node.get_int("shadowQueue", overload.shadow_queue));
  overload.shed_utilization =
      node.get_double("shedUtilization", overload.shed_utilization);
  overload.eject_threshold =
      node.get_double("ejectThreshold", overload.eject_threshold);
  overload.eject_min_samples = static_cast<int>(
      node.get_int("ejectMinSamples", overload.eject_min_samples));
  overload.ewma_alpha = node.get_double("ewmaAlpha", overload.ewma_alpha);
  overload.base_ejection = seconds(node.get_double(
      "baseEjection",
      std::chrono::duration<double>(overload.base_ejection).count()));
  overload.max_ejection = seconds(node.get_double(
      "maxEjection",
      std::chrono::duration<double>(overload.max_ejection).count()));
  overload.probe_path = node.get_string("probePath", overload.probe_path);
  overload.probe_interval = seconds(node.get_double(
      "probeInterval",
      std::chrono::duration<double>(overload.probe_interval).count()));
  return overload;
}

core::ProviderConfig parse_provider(const std::string& name,
                                    const yaml::Node& body) {
  const std::string where = "provider '" + name + "'";
  core::ProviderConfig provider;
  provider.host = require_string(body, "host", where);
  provider.port =
      static_cast<std::uint16_t>(require_number(body, "port", where));
  parse_resilience(body, where, provider);
  return provider;
}

// ---------------------------------------------------------------------------
// Deployment

void parse_deployment(const yaml::Node& deployment, StrategyDef& strategy) {
  if (const yaml::Node* providers = deployment.find("providers");
      providers != nullptr) {
    if (!providers->is_mapping()) fail("deployment: 'providers' must map");
    for (const auto& [name, body] : providers->entries()) {
      strategy.providers[name] = parse_provider(name, body);
    }
  }
  if (const yaml::Node* services = deployment.find("services");
      services != nullptr) {
    if (!services->is_sequence()) fail("deployment: 'services' must be a list");
    for (const yaml::Node& item : services->items()) {
      const yaml::Node& body = unwrap(item, "service");
      core::ServiceDef service;
      service.name = require_string(body, "name", "service");
      const std::string where = "service '" + service.name + "'";
      if (const yaml::Node* proxy = body.find("proxy"); proxy != nullptr) {
        service.proxy_admin_host =
            proxy->get_string("adminHost", proxy->get_string("host"));
        service.proxy_admin_port = static_cast<std::uint16_t>(
            proxy->get_int("adminPort", proxy->get_int("port", 0)));
      }
      // Federation: a `regions:` list declares one proxy per region;
      // `quorum:` is the minimum regions a fleet push must land on
      // (default 0 = majority).
      if (const yaml::Node* regions = body.find("regions");
          regions != nullptr) {
        if (!regions->is_sequence()) {
          fail(where + ": 'regions' must be a list");
        }
        for (const yaml::Node& region_item : regions->items()) {
          const yaml::Node& region_body = unwrap(region_item, "region");
          core::RegionDef region;
          region.name = require_string(region_body, "name", where);
          const std::string region_where = where + " region '" + region.name +
                                           "'";
          region.proxy_admin_host = region_body.get_string(
              "adminHost", region_body.get_string("host"));
          if (region.proxy_admin_host.empty()) {
            fail(region_where + ": needs 'adminHost'");
          }
          region.proxy_admin_port = static_cast<std::uint16_t>(
              region_body.get_int("adminPort", region_body.get_int("port", 0)));
          region.weight = region_body.get_double("weight", 1.0);
          region.canary_order = static_cast<int>(
              region_body.get_int("canaryOrder", 0));
          service.regions.push_back(std::move(region));
        }
        service.quorum = static_cast<int>(body.get_int("quorum", 0));
      }
      parse_resilience(body, where, service);
      if (const yaml::Node* overload = body.find("overload");
          overload != nullptr) {
        service.overload = parse_overload(*overload, where);
      }
      const yaml::Node* versions = body.find("versions");
      if (versions == nullptr || !versions->is_sequence()) {
        fail(where + ": needs a 'versions' list");
      }
      for (const yaml::Node& version_item : versions->items()) {
        const yaml::Node& version_body = unwrap(version_item, "version");
        core::VersionDef version;
        version.version =
            version_body.get_string("name", version_body.get_string("version"));
        if (version.version.empty()) fail(where + ": version without a name");
        version.host = require_string(version_body, "host", where);
        version.port = static_cast<std::uint16_t>(
            require_number(version_body, "port", where));
        // Per-version overrides of the service-level overload knobs.
        version.timeout_ms = static_cast<std::uint32_t>(
            version_body.get_int("timeoutMs", 0));
        version.max_concurrency = static_cast<int>(
            version_body.get_int("maxConcurrency", 0));
        service.versions.push_back(std::move(version));
      }
      strategy.services.push_back(std::move(service));
    }
  }
}

StrategyDef compile_document(const yaml::Node& root) {
  if (!root.is_mapping()) fail("document must be a mapping");
  const yaml::Node* strategy_node = root.find("strategy");
  if (strategy_node == nullptr) fail("missing 'strategy' section");

  StrategyDef strategy;
  strategy.name = strategy_node->get_string("name", "unnamed");
  strategy.initial_state =
      require_string(*strategy_node, "initial", "strategy");

  // Providers may be declared inline in the strategy part too.
  if (const yaml::Node* providers = strategy_node->find("providers");
      providers != nullptr && providers->is_mapping()) {
    for (const auto& [name, body] : providers->entries()) {
      strategy.providers[name] = parse_provider(name, body);
    }
  }

  const yaml::Node* states = strategy_node->find("states");
  if (states == nullptr || !states->is_sequence()) {
    fail("strategy needs a 'states' list");
  }
  for (const yaml::Node& item : states->items()) {
    if (item.is_mapping() && item.entries().size() == 1 &&
        item.entries()[0].first == "rollout") {
      for (StateDef& state : expand_rollout(item.entries()[0].second)) {
        strategy.states.push_back(std::move(state));
      }
      continue;
    }
    strategy.states.push_back(parse_state(unwrap(item, "state")));
  }

  if (const yaml::Node* deployment = root.find("deployment");
      deployment != nullptr) {
    parse_deployment(*deployment, strategy);
  }
  return strategy;
}

}  // namespace

Result<StrategyDef> compile(const yaml::Node& root) {
  try {
    StrategyDef strategy = compile_document(root);
    if (auto v = core::validate(strategy); !v) {
      return Result<StrategyDef>::error(v.error_message());
    }
    return strategy;
  } catch (const CompileError& e) {
    return Result<StrategyDef>::error(e.what());
  }
}

Result<StrategyDef> compile(const std::string& yaml_text) {
  auto root = yaml::parse(yaml_text);
  if (!root.ok()) return Result<StrategyDef>::error(root.error_message());
  return compile(root.value());
}

Result<StrategyDef> compile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Result<StrategyDef>::error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return compile(buffer.str());
}

}  // namespace bifrost::dsl
