// Fault tolerance for the engine's outside-world edges. The strategy
// interpreter stays oblivious: ResilientMetricsClient and
// ResilientProxyController wrap any MetricsClient / ProxyController and
// enforce the RetryPolicy / CircuitBreakerPolicy carried on the model's
// ProviderConfig / ServiceDef. Retries block the run-to-completion
// engine for the backoff duration (exactly like the Node.js prototype
// being modeled), so the sleep is pluggable: wall-clock sleep in the
// real middleware, Simulation::wait_external under the simulator.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/model.hpp"
#include "engine/interfaces.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"

namespace bifrost::engine {

/// Blocks the calling thread (or advances virtual time) for `delay`
/// between retry attempts.
using SleepFn = std::function<void(runtime::Duration)>;

/// SleepFn for the real middleware: std::this_thread::sleep_for.
SleepFn thread_sleeper();

/// Base (un-jittered) backoff before retry number `attempt` (1-based:
/// the delay after the attempt-th failed call). Grows by
/// `policy.multiplier` per attempt and saturates at `policy.max_backoff`.
/// Monotonically non-decreasing in `attempt`.
runtime::Duration backoff_base(const core::RetryPolicy& policy, int attempt);

/// Base backoff plus deterministic jitter from `rng`: a value in
/// [base, base * (1 + policy.jitter)].
runtime::Duration backoff_delay(const core::RetryPolicy& policy, int attempt,
                                util::Rng& rng);

/// Per-target circuit breaker state machine
/// (closed -> open -> half-open -> closed).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  enum class Transition { kNone, kOpened, kClosed };

  explicit CircuitBreaker(core::CircuitBreakerPolicy policy)
      : policy_(policy) {}

  /// Whether a call may proceed at `now`. An open breaker whose
  /// open-duration elapsed moves to half-open and admits probes.
  [[nodiscard]] bool allow(runtime::Time now);

  /// Records the outcome of an admitted call; returns the breaker
  /// transition it caused (if any) so the caller can emit events.
  Transition record_success();
  Transition record_failure(runtime::Time now);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] runtime::Time open_until() const { return open_until_; }

 private:
  core::CircuitBreakerPolicy policy_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  runtime::Time open_until_{0};
};

/// MetricsClient decorator enforcing the per-provider retry policy and
/// circuit breaker. Emits kRetried / kCircuitOpened / kCircuitClosed
/// status events (strategy_id empty, `check` holds the target key) via
/// the listener — wire it to Engine::log_event so operators see
/// degradation on the dashboard and CLI event stream.
class ResilientMetricsClient final : public MetricsClient {
 public:
  ResilientMetricsClient(MetricsClient& inner, runtime::Scheduler& clock,
                         SleepFn sleep, std::uint64_t jitter_seed = 0);

  void set_listener(StatusListener listener) {
    listener_ = std::move(listener);
  }

  util::Result<std::optional<double>> query(
      const core::ProviderConfig& provider, const std::string& query) override;

  /// Inner calls actually issued (for attempt accounting in tests).
  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }

  /// Breaker for a target key, if one was ever created.
  [[nodiscard]] const CircuitBreaker* breaker(const std::string& key) const;

 private:
  MetricsClient& inner_;
  runtime::Scheduler& clock_;
  SleepFn sleep_;
  StatusListener listener_;
  util::Rng rng_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::uint64_t attempts_ = 0;
};

/// ProxyController decorator; the ServiceDef's policies apply.
class ResilientProxyController final : public ProxyController {
 public:
  ResilientProxyController(ProxyController& inner, runtime::Scheduler& clock,
                           SleepFn sleep, std::uint64_t jitter_seed = 0);

  void set_listener(StatusListener listener) {
    listener_ = std::move(listener);
  }

  util::Result<void> apply(const core::ServiceDef& service,
                           const proxy::ProxyConfig& config) override;

  /// Per-region push with the same retry/breaker policy, keyed
  /// "service/region" so one partitioned region tripping its breaker
  /// never blocks pushes to the rest of the fleet.
  util::Result<void> apply_region(const core::ServiceDef& service,
                                  const core::RegionDef& region,
                                  const proxy::ProxyConfig& config) override;

  /// Read-back passes straight through: reconciliation does its own
  /// fallback (re-apply) when the proxy cannot be read, so wrapping it
  /// in retries would only delay startup.
  util::Result<ProxyStateView> fetch(const core::ServiceDef& service) override {
    return inner_.fetch(service);
  }
  util::Result<ProxyStateView> fetch_region(
      const core::ServiceDef& service, const core::RegionDef& region) override {
    return inner_.fetch_region(service, region);
  }

  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }
  [[nodiscard]] const CircuitBreaker* breaker(const std::string& key) const;

 private:
  ProxyController& inner_;
  runtime::Scheduler& clock_;
  SleepFn sleep_;
  StatusListener listener_;
  util::Rng rng_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  std::uint64_t attempts_ = 0;
};

}  // namespace bifrost::engine
