#include "engine/http_clients.hpp"

#include "http/url.hpp"
#include "json/json.hpp"

namespace bifrost::engine {

util::Result<std::optional<double>> HttpMetricsClient::query(
    const core::ProviderConfig& provider, const std::string& query) {
  using R = util::Result<std::optional<double>>;
  const std::string url = "http://" + provider.host + ":" +
                          std::to_string(provider.port) +
                          "/api/v1/query?query=" + http::url_encode(query);
  auto response = client_.get(url);
  if (!response.ok()) return R::error(response.error_message());
  if (response.value().status != 200) {
    return R::error("provider returned HTTP " +
                    std::to_string(response.value().status));
  }
  auto doc = json::parse(response.value().body);
  if (!doc.ok()) return R::error("provider JSON: " + doc.error_message());
  const json::Value* data = doc.value().find("data");
  if (data == nullptr || !data->is_object()) {
    return R::error("provider response missing data object");
  }
  if (data->get_number("seriesMatched", 0.0) <= 0.0) {
    return std::optional<double>{};  // no data
  }
  return std::optional<double>{data->get_number("value", 0.0)};
}

util::Result<void> HttpProxyController::apply(
    const core::ServiceDef& service, const proxy::ProxyConfig& config) {
  using R = util::Result<void>;
  if (service.proxy_admin_host.empty() || service.proxy_admin_port == 0) {
    return R::error("service '" + service.name +
                    "' has no proxy admin endpoint");
  }
  const std::string url = "http://" + service.proxy_admin_host + ":" +
                          std::to_string(service.proxy_admin_port) +
                          "/admin/config";
  auto response =
      client_.put(url, config.to_json().dump(), "application/json");
  if (!response.ok()) return R::error(response.error_message());
  if (response.value().status != 200) {
    return R::error("proxy admin returned HTTP " +
                    std::to_string(response.value().status) + ": " +
                    response.value().body);
  }
  return {};
}

util::Result<ProxyStateView> HttpProxyController::fetch(
    const core::ServiceDef& service) {
  using R = util::Result<ProxyStateView>;
  if (service.proxy_admin_host.empty() || service.proxy_admin_port == 0) {
    return R::error("service '" + service.name +
                    "' has no proxy admin endpoint");
  }
  const std::string url = "http://" + service.proxy_admin_host + ":" +
                          std::to_string(service.proxy_admin_port) +
                          "/admin/config";
  auto response = client_.get(url);
  if (!response.ok()) return R::error(response.error_message());
  if (response.value().status != 200) {
    return R::error("proxy admin returned HTTP " +
                    std::to_string(response.value().status) + ": " +
                    response.value().body);
  }
  auto doc = json::parse(response.value().body);
  if (!doc.ok()) return R::error("proxy config JSON: " + doc.error_message());
  auto config = proxy::ProxyConfig::from_json(doc.value());
  if (!config.ok()) return R::error("proxy config: " + config.error_message());
  ProxyStateView view;
  view.config = std::move(config).value();
  view.epoch = view.config.epoch;
  return view;
}

}  // namespace bifrost::engine
