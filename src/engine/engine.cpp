#include "engine/engine.hpp"

#include <chrono>
#include <utility>

#include "core/serialize.hpp"

namespace bifrost::engine {
namespace {

double to_seconds(runtime::Time t) {
  return std::chrono::duration<double>(t).count();
}

}  // namespace

Engine::Engine(runtime::Scheduler& scheduler, MetricsClient& metrics,
               ProxyController& proxies, Options options)
    : scheduler_(scheduler),
      metrics_(metrics),
      proxies_(proxies),
      options_(options) {
  // A journal-less engine has nothing to recover; one with a journal
  // becomes ready after recover() + reconcile().
  ready_.store(options_.journal == nullptr);
}

Engine::~Engine() = default;

StrategyExecution::Options Engine::execution_options() {
  StrategyExecution::Options options;
  options.check_executor = options_.check_executor;
  options.fleet_executor = options_.fleet_executor;
  if (options_.journal != nullptr) {
    options.durability = this;
    options.epoch_allocator = [this](const std::string& service) {
      const std::lock_guard<std::mutex> lock(journal_mutex_);
      return ++epochs_[service];
    };
  }
  return options;
}

util::Result<std::string> Engine::submit(core::StrategyDef def,
                                         StatusListener extra_listener) {
  if (auto v = core::validate(def); !v) {
    return util::Result<std::string>::error(v.error_message());
  }
  json::Value def_json;
  if (options_.journal != nullptr) {
    if (core::has_custom_eval(def)) {
      return util::Result<std::string>::error(
          "strategy uses a custom in-process check evaluator, which "
          "cannot be reconstructed from the journal; submit it to an "
          "engine without --journal or express the check in the DSL");
    }
    def_json = core::strategy_to_json(def);
  }
  std::string id;
  std::string name = def.name;
  StrategyExecution* execution = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = "s-" + std::to_string(next_id_++);
    StrategySnapshot record;
    record.id = id;
    record.name = def.name;
    record.status = ExecutionStatus::kPending;
    records_[id] = std::move(record);

    auto listener = [this, extra = std::move(extra_listener)](
                        const StatusEvent& event) {
      on_event(event, extra);
    };
    auto owned = std::make_unique<StrategyExecution>(
        id, scheduler_, metrics_, proxies_, std::move(def),
        std::move(listener), execution_options());
    execution = owned.get();
    executions_[id] = std::move(owned);
  }
  if (options_.journal != nullptr) {
    // Write-ahead: the submit record must be durable before the
    // execution can produce any successor records.
    append_record(RecordType::kSubmit,
                  json::Object{{"id", id},
                               {"name", std::move(name)},
                               {"def", std::move(def_json)}});
  }
  execution->request_start();
  return id;
}

bool Engine::abort(const std::string& id, const std::string& reason) {
  StrategyExecution* execution = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = executions_.find(id);
    if (it == executions_.end()) return false;
    execution = it->second.get();
  }
  execution->request_abort(reason);
  return true;
}

void Engine::record(RecordType type, json::Value data) {
  append_record(type, std::move(data));
}

void Engine::append_record(RecordType type, json::Value data) {
  std::string append_error;
  {
    const std::lock_guard<std::mutex> lock(journal_mutex_);
    if (options_.journal == nullptr) return;
    JournalRecord record{type, std::move(data)};
    auto appended = options_.journal->append(record.type, record.data);
    if (!appended.ok()) append_error = appended.error_message();
    // The live tracker mirrors what a replay of the journal would
    // produce; feeding it here is what makes snapshots compacted state
    // rather than a second log. Tracker errors are impossible for
    // records the engine itself produced, so they are not fatal.
    (void)tracker_.apply(record);
    ++records_appended_;
    if (options_.snapshot_every > 0 &&
        records_appended_ % options_.snapshot_every == 0) {
      (void)options_.journal->append(RecordType::kSnapshot,
                                     tracker_.to_snapshot());
    }
  }
  if (!append_error.empty()) {
    StatusEvent event;
    event.time_seconds = to_seconds(scheduler_.now());
    event.type = StatusEvent::Type::kError;
    event.detail = "journal append failed: " + append_error;
    log_event(std::move(event));
  }
}

StrategySnapshot Engine::snapshot_from_resume(
    const std::string& id, const StateTracker::Strategy& strategy) {
  const ResumeState& rs = strategy.resume;
  StrategySnapshot snapshot;
  snapshot.id = id;
  snapshot.name = strategy.name.empty() ? strategy.def.name : strategy.name;
  snapshot.status = rs.status;
  snapshot.current_state = rs.current_state;
  snapshot.started_seconds = to_seconds(rs.started_at);
  snapshot.finished_seconds = to_seconds(rs.finished_at);
  snapshot.transitions = rs.transitions;
  snapshot.checks_executed = rs.checks_executed;
  snapshot.history = rs.history;
  if (strategy.terminal) {
    runtime::Duration specified{0};
    for (const StateVisit& visit : rs.history) {
      const core::StateDef* state = strategy.def.find_state(visit.state);
      if (state != nullptr && !state->is_final()) {
        specified += state->duration();
      }
    }
    snapshot.enactment_delay_seconds =
        to_seconds(rs.finished_at) - to_seconds(rs.started_at) -
        std::chrono::duration<double>(specified).count();
  }
  return snapshot;
}

util::Result<void> Engine::recover(const std::vector<JournalRecord>& records) {
  if (options_.journal == nullptr) {
    return util::Result<void>::error("engine has no journal to recover from");
  }
  std::map<std::string, StateTracker::Strategy> strategies;
  std::uint64_t next_id = 1;
  {
    const std::lock_guard<std::mutex> lock(journal_mutex_);
    if (auto r = tracker_.replay(records); !r) return r;
    strategies = tracker_.strategies();
    epochs_ = tracker_.epochs();
    next_id = tracker_.next_numeric_id();
    records_appended_ = tracker_.records_seen();
  }
  const runtime::Time now = scheduler_.now();
  for (auto& [id, strategy] : strategies) {
    StrategyExecution* execution = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      next_id_ = std::max(next_id_, next_id);
      records_[id] = snapshot_from_resume(id, strategy);
      if (!strategy.terminal) {
        auto listener = [this](const StatusEvent& event) {
          on_event(event, nullptr);
        };
        auto owned = std::make_unique<StrategyExecution>(
            id, scheduler_, metrics_, proxies_, strategy.def,
            std::move(listener), execution_options());
        execution = owned.get();
        executions_[id] = std::move(owned);
      }
    }
    if (execution == nullptr) continue;
    // Marker first: if we crash between the marker and the resume, the
    // next recovery replays to the identical state (markers are ignored
    // by the tracker).
    append_record(RecordType::kRecovered,
                  json::Object{{"id", id},
                               {"state", strategy.resume.current_state},
                               {"tNs", now.count()}});
    StatusEvent event;
    event.time_seconds = to_seconds(now);
    event.strategy_id = id;
    event.type = StatusEvent::Type::kRecovered;
    event.state = strategy.resume.current_state;
    event.detail = "resumed from journal";
    log_event(std::move(event));
    execution->resume(strategy.resume);
  }
  return {};
}

util::Result<void> Engine::reconcile() {
  if (options_.journal == nullptr) {
    ready_.store(true);
    return {};
  }
  std::map<std::string, StateTracker::Intent> intents;
  std::map<std::string, StateTracker::Intent> fleet_intents;
  std::map<std::string, StateTracker::Intent> region_intents;
  std::map<std::string, StateTracker::Strategy> strategies;
  {
    const std::lock_guard<std::mutex> lock(journal_mutex_);
    intents = tracker_.intents();
    fleet_intents = tracker_.fleet_intents();
    region_intents = tracker_.region_intents();
    strategies = tracker_.strategies();
  }
  const runtime::Time now = scheduler_.now();
  for (const auto& [service_name, intent] : intents) {
    const core::ServiceDef* service = nullptr;
    if (const auto it = strategies.find(intent.strategy_id);
        it != strategies.end()) {
      service = it->second.def.find_service(service_name);
    }
    std::string action;
    if (service == nullptr) {
      action = "skipped: service not in journaled strategy definition";
    } else if (service->federated()) {
      // Each region converges to its governing intent: the fleet-wide
      // epoch floor, or a newer scoped intent that named the region.
      // Regions at (or past) their floor ack as no-ops; partitioned
      // regions that come back get the config re-pushed with the
      // original epoch (the proxy dedupes).
      const auto fleet_it = fleet_intents.find(service_name);
      std::string detail;
      converge_regions(
          *service,
          fleet_it != fleet_intents.end() ? &fleet_it->second : nullptr,
          region_intents, now, detail);
      action = "fleet: " + detail;
    } else {
      auto fetched = proxies_.fetch(*service);
      if (fetched.ok() && fetched.value().epoch >= intent.epoch) {
        action = "in_sync";
      } else {
        // Proxy is behind (or unreadable): re-issue the journaled
        // intent with its original epoch — the proxy applies it at
        // most once.
        proxy::ProxyConfig config = intent.config;
        config.epoch = intent.epoch;
        auto applied = proxies_.apply(*service, config);
        action = applied.ok()
                     ? "reapplied"
                     : "reapply_failed: " + applied.error_message();
      }
    }
    append_record(
        RecordType::kReconciled,
        json::Object{{"service", service_name},
                     {"epoch", static_cast<std::int64_t>(intent.epoch)},
                     {"action", action},
                     {"tNs", now.count()}});
    StatusEvent event;
    event.time_seconds = to_seconds(now);
    event.strategy_id = intent.strategy_id;
    event.type = StatusEvent::Type::kReconciled;
    event.detail = service_name + ": " + action;
    log_event(std::move(event));
  }
  ready_.store(true);
  return {};
}

int Engine::converge_regions(
    const core::ServiceDef& service, const StateTracker::Intent* fleet,
    const std::map<std::string, StateTracker::Intent>& region_intents,
    runtime::Time now, std::string& detail) {
  int resynced = 0;
  for (const core::RegionDef* region : service.regions_in_canary_order()) {
    // The governing intent is the newest push that targeted this
    // region: a scoped intent overrides the fleet-wide floor only for
    // the regions it named.
    const StateTracker::Intent* governing = fleet;
    const auto scoped =
        region_intents.find(service.name + "/" + region->name);
    if (scoped != region_intents.end() &&
        (governing == nullptr || scoped->second.epoch >= governing->epoch)) {
      governing = &scoped->second;
    }
    std::string verdict;
    if (governing == nullptr) {
      // Never pushed to: nothing to converge (leaving it untouched is
      // what makes post-crash reconcile byte-identical to a run that
      // never targeted the region).
      verdict = "never_targeted";
    } else {
      auto fetched = proxies_.fetch_region(service, *region);
      if (fetched.ok() && fetched.value().epoch >= governing->epoch) {
        verdict = "in_sync";
      } else {
        proxy::ProxyConfig config = governing->config;
        config.epoch = governing->epoch;
        auto applied = proxies_.apply_region(service, *region, config);
        if (applied.ok()) {
          verdict = "resynced";
          ++resynced;
          StatusEvent event;
          event.time_seconds = to_seconds(now);
          event.strategy_id = governing->strategy_id;
          event.type = StatusEvent::Type::kRegionResynced;
          event.state = service.name;
          event.check = region->name;
          event.detail = "region '" + region->name +
                         "' converged to fleet epoch " +
                         std::to_string(governing->epoch);
          log_event(std::move(event));
        } else {
          verdict = "resync_failed: " + applied.error_message();
        }
      }
    }
    if (!detail.empty()) detail += ", ";
    detail += region->name + "=" + verdict;
  }
  return resynced;
}

util::Result<int> Engine::resync_regions() {
  if (options_.journal == nullptr) {
    return util::Result<int>::error("engine has no journal to resync from");
  }
  std::map<std::string, StateTracker::Intent> intents;
  std::map<std::string, StateTracker::Intent> fleet_intents;
  std::map<std::string, StateTracker::Intent> region_intents;
  std::map<std::string, StateTracker::Strategy> strategies;
  {
    const std::lock_guard<std::mutex> lock(journal_mutex_);
    intents = tracker_.intents();
    fleet_intents = tracker_.fleet_intents();
    region_intents = tracker_.region_intents();
    strategies = tracker_.strategies();
  }
  const runtime::Time now = scheduler_.now();
  int total = 0;
  for (const auto& [service_name, intent] : intents) {
    const core::ServiceDef* service = nullptr;
    if (const auto it = strategies.find(intent.strategy_id);
        it != strategies.end()) {
      service = it->second.def.find_service(service_name);
    }
    if (service == nullptr || !service->federated()) continue;
    const auto fleet_it = fleet_intents.find(service_name);
    std::string detail;
    const int resynced = converge_regions(
        *service,
        fleet_it != fleet_intents.end() ? &fleet_it->second : nullptr,
        region_intents, now, detail);
    total += resynced;
    if (resynced > 0) {
      append_record(
          RecordType::kReconciled,
          json::Object{{"service", service_name},
                       {"epoch", static_cast<std::int64_t>(intent.epoch)},
                       {"action", "resync: " + detail},
                       {"tNs", now.count()}});
    }
  }
  return total;
}

void Engine::log_event(StatusEvent event) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event.sequence = next_sequence_++;
    events_.push_back(std::move(event));
    if (events_.size() > options_.event_log_capacity) events_.pop_front();
  }
  event_cv_.notify_all();
}

void Engine::on_event(StatusEvent event, const StatusListener& extra) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event.sequence = next_sequence_++;
    events_.push_back(event);
    if (events_.size() > options_.event_log_capacity) events_.pop_front();

    auto record_it = records_.find(event.strategy_id);
    if (record_it != records_.end()) {
      StrategySnapshot& record = record_it->second;
      const auto exec_it = executions_.find(event.strategy_id);
      switch (event.type) {
        case StatusEvent::Type::kStarted:
          record.status = ExecutionStatus::kRunning;
          record.started_seconds = event.time_seconds;
          break;
        case StatusEvent::Type::kStateEntered:
          if (!record.current_state.empty()) ++record.transitions;
          record.current_state = event.state;
          record.history.push_back(StateVisit{
              event.state,
              std::chrono::duration_cast<runtime::Time>(
                  std::chrono::duration<double>(event.time_seconds)),
              runtime::Time{0}, 0.0, false});
          break;
        case StatusEvent::Type::kCheckExecuted:
          ++record.checks_executed;
          break;
        case StatusEvent::Type::kStateCompleted:
          if (!record.history.empty()) {
            record.history.back().outcome = event.value;
            record.history.back().exited =
                std::chrono::duration_cast<runtime::Time>(
                    std::chrono::duration<double>(event.time_seconds));
          }
          break;
        case StatusEvent::Type::kFinished:
        case StatusEvent::Type::kAborted:
          record.finished_seconds = event.time_seconds;
          if (exec_it != executions_.end()) {
            record.status = exec_it->second->status();
            record.enactment_delay_seconds =
                std::chrono::duration<double>(
                    exec_it->second->enactment_delay())
                    .count();
          }
          if (!record.history.empty() &&
              record.history.back().exited == runtime::Time{0}) {
            record.history.back().exited =
                std::chrono::duration_cast<runtime::Time>(
                    std::chrono::duration<double>(event.time_seconds));
          }
          break;
        default:
          break;
      }
    }
  }
  event_cv_.notify_all();
  if (extra) extra(event);
}

std::optional<StrategySnapshot> Engine::status(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<StrategySnapshot> Engine::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StrategySnapshot> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(record);
  return out;
}

std::size_t Engine::running_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.status == ExecutionStatus::kRunning ||
        record.status == ExecutionStatus::kPending) {
      ++n;
    }
  }
  return n;
}

std::vector<StatusEvent> Engine::events_since(
    std::uint64_t after, std::size_t max,
    std::chrono::milliseconds wait) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto collect = [&] {
    std::vector<StatusEvent> out;
    for (const StatusEvent& event : events_) {
      if (event.sequence > after) {
        out.push_back(event);
        if (out.size() >= max) break;
      }
    }
    return out;
  };
  auto out = collect();
  if (out.empty() && wait.count() > 0) {
    event_cv_.wait_for(lock, wait,
                       [&] { return next_sequence_ - 1 > after; });
    out = collect();
  }
  return out;
}

std::optional<std::string> Engine::dot(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = executions_.find(id);
  if (it == executions_.end()) return std::nullopt;
  return core::to_dot(it->second->definition());
}

std::uint64_t Engine::last_event_sequence() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_ - 1;
}

}  // namespace bifrost::engine
