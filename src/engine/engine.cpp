#include "engine/engine.hpp"

#include <chrono>

namespace bifrost::engine {

Engine::Engine(runtime::Scheduler& scheduler, MetricsClient& metrics,
               ProxyController& proxies, Options options)
    : scheduler_(scheduler),
      metrics_(metrics),
      proxies_(proxies),
      options_(options) {}

Engine::~Engine() = default;

util::Result<std::string> Engine::submit(core::StrategyDef def,
                                         StatusListener extra_listener) {
  if (auto v = core::validate(def); !v) {
    return util::Result<std::string>::error(v.error_message());
  }
  std::string id;
  StrategyExecution* execution = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = "s-" + std::to_string(next_id_++);
    StrategySnapshot record;
    record.id = id;
    record.name = def.name;
    record.status = ExecutionStatus::kPending;
    records_[id] = std::move(record);

    auto listener = [this, extra = std::move(extra_listener)](
                        const StatusEvent& event) {
      on_event(event, extra);
    };
    auto owned = std::make_unique<StrategyExecution>(
        id, scheduler_, metrics_, proxies_, std::move(def),
        std::move(listener));
    execution = owned.get();
    executions_[id] = std::move(owned);
  }
  scheduler_.post([execution] { execution->start(); });
  return id;
}

bool Engine::abort(const std::string& id, const std::string& reason) {
  StrategyExecution* execution = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = executions_.find(id);
    if (it == executions_.end()) return false;
    execution = it->second.get();
  }
  scheduler_.post([execution, reason] { execution->abort(reason); });
  return true;
}

void Engine::log_event(StatusEvent event) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event.sequence = next_sequence_++;
    events_.push_back(std::move(event));
    if (events_.size() > options_.event_log_capacity) events_.pop_front();
  }
  event_cv_.notify_all();
}

void Engine::on_event(StatusEvent event, const StatusListener& extra) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    event.sequence = next_sequence_++;
    events_.push_back(event);
    if (events_.size() > options_.event_log_capacity) events_.pop_front();

    auto record_it = records_.find(event.strategy_id);
    if (record_it != records_.end()) {
      StrategySnapshot& record = record_it->second;
      const auto exec_it = executions_.find(event.strategy_id);
      switch (event.type) {
        case StatusEvent::Type::kStarted:
          record.status = ExecutionStatus::kRunning;
          record.started_seconds = event.time_seconds;
          break;
        case StatusEvent::Type::kStateEntered:
          if (!record.current_state.empty()) ++record.transitions;
          record.current_state = event.state;
          record.history.push_back(StateVisit{
              event.state,
              std::chrono::duration_cast<runtime::Time>(
                  std::chrono::duration<double>(event.time_seconds)),
              runtime::Time{0}, 0.0, false});
          break;
        case StatusEvent::Type::kCheckExecuted:
          ++record.checks_executed;
          break;
        case StatusEvent::Type::kStateCompleted:
          if (!record.history.empty()) {
            record.history.back().outcome = event.value;
            record.history.back().exited =
                std::chrono::duration_cast<runtime::Time>(
                    std::chrono::duration<double>(event.time_seconds));
          }
          break;
        case StatusEvent::Type::kFinished:
        case StatusEvent::Type::kAborted:
          record.finished_seconds = event.time_seconds;
          if (exec_it != executions_.end()) {
            record.status = exec_it->second->status();
            record.enactment_delay_seconds =
                std::chrono::duration<double>(
                    exec_it->second->enactment_delay())
                    .count();
          }
          if (!record.history.empty() &&
              record.history.back().exited == runtime::Time{0}) {
            record.history.back().exited =
                std::chrono::duration_cast<runtime::Time>(
                    std::chrono::duration<double>(event.time_seconds));
          }
          break;
        default:
          break;
      }
    }
  }
  event_cv_.notify_all();
  if (extra) extra(event);
}

std::optional<StrategySnapshot> Engine::status(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<StrategySnapshot> Engine::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StrategySnapshot> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(record);
  return out;
}

std::size_t Engine::running_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.status == ExecutionStatus::kRunning ||
        record.status == ExecutionStatus::kPending) {
      ++n;
    }
  }
  return n;
}

std::vector<StatusEvent> Engine::events_since(
    std::uint64_t after, std::size_t max,
    std::chrono::milliseconds wait) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto collect = [&] {
    std::vector<StatusEvent> out;
    for (const StatusEvent& event : events_) {
      if (event.sequence > after) {
        out.push_back(event);
        if (out.size() >= max) break;
      }
    }
    return out;
  };
  auto out = collect();
  if (out.empty() && wait.count() > 0) {
    event_cv_.wait_for(lock, wait,
                       [&] { return next_sequence_ - 1 > after; });
    out = collect();
  }
  return out;
}

std::optional<std::string> Engine::dot(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = executions_.find(id);
  if (it == executions_.end()) return std::nullopt;
  return core::to_dot(it->second->definition());
}

std::uint64_t Engine::last_event_sequence() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_sequence_ - 1;
}

}  // namespace bifrost::engine
