#pragma once

#include <cstdint>
#include <memory>

#include "engine/engine.hpp"
#include "http/server.hpp"

namespace bifrost::engine {

/// REST face of the engine, used by the Bifrost CLI and dashboard.
/// Endpoints:
///   POST   /strategies            body: DSL YAML -> {"id": "..."}
///   POST   /strategies?dryRun=1   compile + validate only -> summary
///   GET    /strategies            list of snapshots
///   GET    /strategies/{id}       snapshot with state history
///   GET    /strategies/{id}/dot   Graphviz rendering of the automaton
///   DELETE /strategies/{id}       abort
///   GET    /events?since=N&wait=MS[&strategy=ID]  long-poll status
///          event stream (the Socket.IO substitute: ordered one-way
///          push to CLI/dashboard), optionally per strategy
///   GET    /healthz
class EngineServer {
 public:
  EngineServer(Engine& engine, std::uint16_t port = 0);
  ~EngineServer();

  void start();
  void stop();
  [[nodiscard]] std::uint16_t port() const;

 private:
  http::Response handle(const http::Request& request);

  Engine& engine_;
  std::unique_ptr<http::HttpServer> server_;
};

/// JSON rendering of a snapshot / event (shared with the CLI).
json::Value snapshot_to_json(const StrategySnapshot& snapshot);
json::Value event_to_json(const StatusEvent& event);

}  // namespace bifrost::engine
