#include "engine/proxy_events.hpp"

#include <utility>

#include "json/json.hpp"

namespace bifrost::engine {

namespace {

/// Maps the proxy's event kind string onto the engine's event type.
/// The names match HealthEvent::kind_name() exactly; an unknown kind
/// (newer proxy than engine) degrades to kError rather than dropping
/// the event.
StatusEvent::Type type_of(const std::string& kind) {
  if (kind == "backend_ejected") return StatusEvent::Type::kBackendEjected;
  if (kind == "backend_recovered") return StatusEvent::Type::kBackendRecovered;
  if (kind == "load_shed") return StatusEvent::Type::kLoadShed;
  return StatusEvent::Type::kError;
}

}  // namespace

ProxyEventPump::ProxyEventPump(StatusListener listener, Options options)
    : listener_(std::move(listener)), options_(options) {}

ProxyEventPump::~ProxyEventPump() { stop(); }

void ProxyEventPump::watch(const core::ServiceDef& service) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto upsert = [&](const std::string& region, const std::string& host,
                          std::uint16_t port) {
    if (host.empty() || port == 0) return;
    for (Watched& watched : watched_) {
      if (watched.service == service.name && watched.region == region) {
        watched.host = host;
        watched.port = port;
        return;
      }
    }
    watched_.push_back(Watched{service.name, region, host, port,
                               /*cursor=*/0});
  };
  upsert("", service.proxy_admin_host, service.proxy_admin_port);
  for (const core::RegionDef& region : service.regions) {
    upsert(region.name, region.proxy_admin_host, region.proxy_admin_port);
  }
}

std::size_t ProxyEventPump::poll_once() {
  // Snapshot the watch list so the HTTP round trips run without the
  // lock; cursors are written back per service afterwards.
  std::vector<Watched> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot = watched_;
  }
  std::size_t total = 0;
  for (Watched& watched : snapshot) {
    const std::size_t n = drain(watched);
    total += n;
    const std::lock_guard<std::mutex> lock(mutex_);
    forwarded_ += n;
    for (Watched& live : watched_) {
      if (live.service == watched.service && live.region == watched.region &&
          watched.cursor > live.cursor) {
        live.cursor = watched.cursor;
      }
    }
  }
  return total;
}

std::size_t ProxyEventPump::drain(Watched& watched) {
  const std::string url =
      "http://" + watched.host + ":" + std::to_string(watched.port) +
      "/admin/events?since=" + std::to_string(watched.cursor);
  auto response = client_.get(url);
  if (!response.ok() || response.value().status != 200) return 0;
  auto doc = json::parse(response.value().body);
  if (!doc.ok()) return 0;
  const json::Value* events = doc.value().find("events");
  if (events == nullptr || !events->is_array()) return 0;

  std::size_t forwarded = 0;

  // The proxy's event ring is bounded: if our cursor lagged past it,
  // events (possibly a backend_ejected) overflowed before we read them.
  // Surface an events_lost marker instead of silently skipping the gap.
  const auto lost =
      static_cast<std::uint64_t>(doc.value().get_number("lost", 0.0));
  if (lost > 0 && watched.cursor != 0) {
    StatusEvent marker;
    marker.type = StatusEvent::Type::kEventsLost;
    marker.state = watched.service;
    marker.check = watched.region;
    marker.value = static_cast<double>(lost);
    marker.detail =
        (watched.region.empty()
             ? std::string("proxy event ring overflowed: ")
             : "proxy event ring of region '" + watched.region +
                   "' overflowed: ") +
        std::to_string(lost) + " event(s) after sequence " +
        std::to_string(watched.cursor) + " were never seen";
    if (listener_) listener_(marker);
    ++forwarded;
  }
  // With nothing retained to serve, jump the cursor over the gap so the
  // loss is reported once, not on every poll.
  if (lost > 0) {
    const auto last =
        static_cast<std::uint64_t>(doc.value().get_number("lastSequence", 0.0));
    if (events->as_array().empty() && last > watched.cursor) {
      watched.cursor = last;
    }
  }
  for (const json::Value& entry : events->as_array()) {
    if (!entry.is_object()) continue;
    const auto sequence =
        static_cast<std::uint64_t>(entry.get_number("sequence", 0.0));
    if (sequence <= watched.cursor && sequence != 0) continue;
    StatusEvent event;
    event.type = type_of(entry.get_string("kind", ""));
    event.time_seconds = entry.get_number("timeSeconds", 0.0);
    event.state = entry.get_string("service", watched.service);
    event.check = entry.get_string("version", "");
    event.detail = entry.get_string("detail", "");
    if (listener_) listener_(event);
    if (sequence > watched.cursor) watched.cursor = sequence;
    ++forwarded;
  }
  return forwarded;
}

void ProxyEventPump::start() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { pump_loop(); });
}

void ProxyEventPump::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  client_.abort_inflight();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    running_ = false;
  }
}

void ProxyEventPump::pump_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      if (stop_cv_.wait_for(lock, options_.poll_interval,
                            [this] { return stop_; })) {
        return;
      }
    }
    (void)poll_once();
  }
}

std::uint64_t ProxyEventPump::events_forwarded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return forwarded_;
}

}  // namespace bifrost::engine
