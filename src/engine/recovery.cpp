#include "engine/recovery.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "core/serialize.hpp"

namespace bifrost::engine {
namespace {

using util::Result;

runtime::Time time_from(const json::Value& data, const std::string& key) {
  return runtime::Time(static_cast<std::int64_t>(data.get_number(key)));
}

/// Numeric suffix of an "s-N" strategy id, 0 if foreign.
std::uint64_t id_suffix(const std::string& id) {
  if (id.rfind("s-", 0) != 0) return 0;
  std::uint64_t n = 0;
  for (std::size_t i = 2; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    n = n * 10 + static_cast<std::uint64_t>(id[i] - '0');
  }
  return n;
}

const char* pending_name(ResumeState::Pending pending) {
  switch (pending) {
    case ResumeState::Pending::kNone:
      return "none";
    case ResumeState::Pending::kStart:
      return "start";
    case ResumeState::Pending::kEnterState:
      return "enter_state";
    case ResumeState::Pending::kTransition:
      return "transition";
    case ResumeState::Pending::kException:
      return "exception";
    case ResumeState::Pending::kRollback:
      return "rollback";
  }
  return "none";
}

ResumeState::Pending pending_from_name(std::string_view name) {
  if (name == "start") return ResumeState::Pending::kStart;
  if (name == "enter_state") return ResumeState::Pending::kEnterState;
  if (name == "transition") return ResumeState::Pending::kTransition;
  if (name == "exception") return ResumeState::Pending::kException;
  if (name == "rollback") return ResumeState::Pending::kRollback;
  return ResumeState::Pending::kNone;
}

}  // namespace

Result<void> StateTracker::replay(const std::vector<JournalRecord>& records) {
  // Snapshots carry the complete tracker state, so replay only needs
  // the suffix that follows the newest one.
  std::size_t start = 0;
  for (std::size_t i = records.size(); i > 0; --i) {
    if (records[i - 1].type == RecordType::kSnapshot) {
      start = i - 1;
      break;
    }
  }
  for (std::size_t i = start; i < records.size(); ++i) {
    if (auto r = apply(records[i]); !r) {
      return Result<void>::error("journal record " + std::to_string(i) + " (" +
                                 record_type_name(records[i].type) +
                                 "): " + r.error_message());
    }
  }
  return {};
}

Result<void> StateTracker::apply(const JournalRecord& record) {
  ++records_seen_;
  return apply_impl(record);
}

Result<void> StateTracker::apply_impl(const JournalRecord& record) {
  const json::Value& data = record.data;

  if (record.type == RecordType::kSnapshot) return load_snapshot(data);
  if (record.type == RecordType::kRecovered ||
      record.type == RecordType::kReconciled) {
    return {};  // informational markers
  }

  if (record.type == RecordType::kSubmit) {
    const std::string id = data.get_string("id");
    if (id.empty()) return Result<void>::error("submit record without id");
    const json::Value* def_json = data.find("def");
    if (def_json == nullptr) {
      return Result<void>::error("submit record without def");
    }
    auto def = core::strategy_from_json(*def_json);
    if (!def.ok()) return Result<void>::error(def.error_message());
    Strategy strategy;
    strategy.def = std::move(def).value();
    strategy.name = data.get_string("name", strategy.def.name);
    strategy.resume.pending = ResumeState::Pending::kStart;
    strategy.resume.status = ExecutionStatus::kPending;
    strategies_[id] = std::move(strategy);
    next_id_ = std::max(next_id_, id_suffix(id) + 1);
    return {};
  }

  const std::string id = data.get_string("id");
  const auto it = strategies_.find(id);
  if (it == strategies_.end()) {
    return Result<void>::error("record for unknown strategy '" + id + "'");
  }
  Strategy& strategy = it->second;
  ResumeState& rs = strategy.resume;

  switch (record.type) {
    case RecordType::kStarted: {
      rs.status = ExecutionStatus::kRunning;
      rs.started_at = time_from(data, "tNs");
      rs.pending = ResumeState::Pending::kEnterState;
      rs.target = strategy.def.initial_state;
      return {};
    }

    case RecordType::kStateEntered: {
      const runtime::Time entered = time_from(data, "tNs");
      if (!rs.history.empty() &&
          rs.history.back().exited == runtime::Time{0}) {
        rs.history.back().exited = entered;
        rs.history.back().via_exception =
            rs.pending == ResumeState::Pending::kException ||
            rs.pending == ResumeState::Pending::kRollback;
      }
      rs.current_state = data.get_string("state");
      rs.history.push_back(
          StateVisit{rs.current_state, entered, runtime::Time{0}, 0.0, false});
      rs.transitions = rs.history.size() - 1;
      rs.applies.clear();
      rs.checks.clear();
      rs.pending = ResumeState::Pending::kNone;
      rs.target.clear();
      rs.pending_check.clear();
      rs.pending_reason.clear();
      rs.exception_journaled = false;
      return {};
    }

    case RecordType::kApplyIntent: {
      const auto index = static_cast<std::size_t>(
          data.get_number("routingIndex"));
      if (rs.applies.size() <= index) rs.applies.resize(index + 1);
      const auto epoch =
          static_cast<std::uint64_t>(data.get_number("epoch"));
      rs.applies[index].intent_journaled = true;
      rs.applies[index].epoch = epoch;

      const std::string service = data.get_string("service");
      epochs_[service] = std::max(epochs_[service], epoch);
      if (const json::Value* config_json = data.find("config")) {
        auto config = proxy::ProxyConfig::from_json(*config_json);
        if (!config.ok()) {
          return Result<void>::error("apply intent config: " +
                                     config.error_message());
        }
        Intent incoming;
        incoming.epoch = epoch;
        incoming.config = std::move(config).value();
        incoming.strategy_id = id;
        if (const json::Value* regions = data.find("regions");
            regions != nullptr && regions->is_array()) {
          for (const json::Value& region : regions->as_array()) {
            if (region.is_string()) {
              incoming.regions.push_back(region.as_string());
            }
          }
        }
        // Later intents supersede earlier ones; epochs are per-service
        // monotone so ">=" keeps the newest.
        const auto supersede = [&incoming](Intent& slot) {
          if (incoming.epoch >= slot.epoch) slot = incoming;
        };
        supersede(intents_[service]);
        // Scoped intents govern only the regions they name — reconcile
        // must never push a canary-scoped config fleet-wide.
        if (incoming.regions.empty()) {
          supersede(fleet_intents_[service]);
        } else {
          for (const std::string& region : incoming.regions) {
            supersede(region_intents_[service + "/" + region]);
          }
        }
      }
      return {};
    }

    case RecordType::kRegionAck: {
      // One region of a fleet push returned. The push as a whole is
      // still in flight (its kApplyAck is pending), so resume re-pushes
      // only the regions without a journaled verdict.
      const auto index = static_cast<std::size_t>(
          data.get_number("routingIndex"));
      if (rs.applies.size() <= index) rs.applies.resize(index + 1);
      rs.applies[index].region_acks[data.get_string("region")] =
          data.get_bool("ok");
      return {};
    }

    case RecordType::kApplyAck: {
      const auto index = static_cast<std::size_t>(
          data.get_number("routingIndex"));
      if (rs.applies.size() <= index) rs.applies.resize(index + 1);
      rs.applies[index].acked = true;
      rs.applies[index].ok = data.get_bool("ok");
      if (!rs.applies[index].ok) {
        const core::StateDef* state = strategy.def.find_state(rs.current_state);
        if (state != nullptr && !state->is_final()) {
          rs.pending = ResumeState::Pending::kRollback;
          rs.pending_reason = "proxy update for service '" +
                              data.get_string("service") +
                              "' failed: " + data.get_string("error");
        }
      }
      return {};
    }

    case RecordType::kCheckExecuted: {
      const auto index =
          static_cast<std::size_t>(data.get_number("checkIndex"));
      if (rs.checks.size() <= index) rs.checks.resize(index + 1);
      ResumeState::CheckProgress& check = rs.checks[index];
      check.executed = static_cast<int>(data.get_number("executed"));
      check.successes = static_cast<int>(data.get_number("successes"));
      check.done = data.get_bool("done");
      check.next_deadline =
          runtime::Time(static_cast<std::int64_t>(
              data.get_number("nextDeadlineNs", 0.0)));
      ++rs.checks_executed;
      if (const json::Value* fallback = data.find("exceptionFallback")) {
        rs.pending = ResumeState::Pending::kException;
        rs.target = fallback->is_string() ? fallback->as_string() : "";
        rs.pending_check = data.get_string("check");
        rs.exception_journaled = false;
      }
      return {};
    }

    case RecordType::kExceptionTriggered: {
      rs.pending = ResumeState::Pending::kException;
      rs.target = data.get_string("fallback");
      rs.pending_check = data.get_string("check");
      rs.exception_journaled = true;
      return {};
    }

    case RecordType::kStateCompleted: {
      const double outcome = data.get_number("outcome");
      if (!rs.history.empty()) rs.history.back().outcome = outcome;
      const core::StateDef* state = strategy.def.find_state(rs.current_state);
      if (state == nullptr || state->transitions.empty()) {
        return Result<void>::error("state completed in unknown state '" +
                                   rs.current_state + "'");
      }
      rs.pending = ResumeState::Pending::kTransition;
      rs.target = core::next_state_name(*state, outcome);
      return {};
    }

    case RecordType::kFinished: {
      const auto status =
          execution_status_from_name(data.get_string("status"));
      rs.status = status.value_or(ExecutionStatus::kSucceeded);
      rs.finished_at = time_from(data, "tNs");
      if (!rs.history.empty() &&
          rs.history.back().exited == runtime::Time{0}) {
        rs.history.back().exited = rs.finished_at;
      }
      rs.pending = ResumeState::Pending::kNone;
      strategy.terminal = true;
      return {};
    }

    case RecordType::kAborted: {
      rs.status = ExecutionStatus::kAborted;
      rs.finished_at = time_from(data, "tNs");
      if (!rs.history.empty() &&
          rs.history.back().exited == runtime::Time{0}) {
        rs.history.back().exited = rs.finished_at;
      }
      rs.pending = ResumeState::Pending::kNone;
      strategy.terminal = true;
      return {};
    }

    case RecordType::kSubmit:
    case RecordType::kSnapshot:
    case RecordType::kRecovered:
    case RecordType::kReconciled:
      return {};  // handled above
  }
  return {};
}

// ---------------------------------------------------------------------------
// Snapshot round-trip

json::Value StateTracker::to_snapshot() const {
  json::Array strategies;
  for (const auto& [id, strategy] : strategies_) {
    const ResumeState& rs = strategy.resume;
    json::Array history;
    for (const StateVisit& visit : rs.history) {
      history.push_back(json::Object{
          {"state", visit.state},
          {"enteredNs", static_cast<std::int64_t>(visit.entered.count())},
          {"exitedNs", static_cast<std::int64_t>(visit.exited.count())},
          {"outcome", visit.outcome},
          {"viaException", visit.via_exception},
      });
    }
    json::Array applies;
    for (const ResumeState::ApplyProgress& apply : rs.applies) {
      json::Object entry{
          {"intent", apply.intent_journaled},
          {"epoch", static_cast<std::int64_t>(apply.epoch)},
          {"acked", apply.acked},
          {"ok", apply.ok},
      };
      if (!apply.region_acks.empty()) {
        json::Object acks;
        for (const auto& [region, ok] : apply.region_acks) acks[region] = ok;
        entry["regionAcks"] = std::move(acks);
      }
      applies.push_back(std::move(entry));
    }
    json::Array checks;
    for (const ResumeState::CheckProgress& check : rs.checks) {
      checks.push_back(json::Object{
          {"executed", check.executed},
          {"successes", check.successes},
          {"done", check.done},
          {"nextDeadlineNs",
           static_cast<std::int64_t>(check.next_deadline.count())},
      });
    }
    strategies.push_back(json::Object{
        {"id", id},
        {"def", core::strategy_to_json(strategy.def)},
        {"name", strategy.name},
        {"terminal", strategy.terminal},
        {"status", execution_status_name(rs.status)},
        {"currentState", rs.current_state},
        {"startedNs", static_cast<std::int64_t>(rs.started_at.count())},
        {"finishedNs", static_cast<std::int64_t>(rs.finished_at.count())},
        {"transitions", rs.transitions},
        {"checksExecuted", rs.checks_executed},
        {"history", std::move(history)},
        {"applies", std::move(applies)},
        {"checks", std::move(checks)},
        {"pending", pending_name(rs.pending)},
        {"target", rs.target},
        {"pendingCheck", rs.pending_check},
        {"exceptionJournaled", rs.exception_journaled},
        {"pendingReason", rs.pending_reason},
    });
  }
  json::Object epochs;
  for (const auto& [service, epoch] : epochs_) {
    epochs[service] = static_cast<std::int64_t>(epoch);
  }
  const auto intents_json = [](const std::map<std::string, Intent>& intents) {
    json::Object out;
    for (const auto& [key, intent] : intents) {
      json::Object entry{
          {"epoch", static_cast<std::int64_t>(intent.epoch)},
          {"config", intent.config.to_json()},
          {"strategyId", intent.strategy_id},
      };
      if (!intent.regions.empty()) {
        json::Array regions;
        for (const std::string& region : intent.regions) {
          regions.push_back(region);
        }
        entry["regions"] = std::move(regions);
      }
      out[key] = std::move(entry);
    }
    return out;
  };
  return json::Object{
      {"nextId", next_id_},
      {"epochs", std::move(epochs)},
      {"intents", intents_json(intents_)},
      {"fleetIntents", intents_json(fleet_intents_)},
      {"regionIntents", intents_json(region_intents_)},
      {"strategies", std::move(strategies)},
  };
}

Result<void> StateTracker::load_snapshot(const json::Value& snapshot) {
  if (!snapshot.is_object()) {
    return Result<void>::error("snapshot must be an object");
  }
  strategies_.clear();
  epochs_.clear();
  intents_.clear();
  fleet_intents_.clear();
  region_intents_.clear();
  next_id_ = static_cast<std::uint64_t>(snapshot.get_number("nextId", 1.0));

  if (const json::Value* epochs = snapshot.find("epochs");
      epochs != nullptr && epochs->is_object()) {
    for (const auto& [service, epoch] : epochs->as_object()) {
      if (epoch.is_number()) {
        epochs_[service] = static_cast<std::uint64_t>(epoch.as_number());
      }
    }
  }
  const auto load_intents =
      [&snapshot](const char* key,
                  std::map<std::string, Intent>& out) -> Result<void> {
    const json::Value* intents = snapshot.find(key);
    if (intents == nullptr || !intents->is_object()) return {};
    for (const auto& [name, value] : intents->as_object()) {
      Intent intent;
      intent.epoch = static_cast<std::uint64_t>(value.get_number("epoch"));
      intent.strategy_id = value.get_string("strategyId");
      if (const json::Value* config = value.find("config")) {
        auto parsed = proxy::ProxyConfig::from_json(*config);
        if (!parsed.ok()) {
          return Result<void>::error("snapshot intent config: " +
                                     parsed.error_message());
        }
        intent.config = std::move(parsed).value();
      }
      if (const json::Value* regions = value.find("regions");
          regions != nullptr && regions->is_array()) {
        for (const json::Value& region : regions->as_array()) {
          if (region.is_string()) intent.regions.push_back(region.as_string());
        }
      }
      out[name] = std::move(intent);
    }
    return {};
  };
  if (auto r = load_intents("intents", intents_); !r) return r;
  if (auto r = load_intents("fleetIntents", fleet_intents_); !r) return r;
  if (auto r = load_intents("regionIntents", region_intents_); !r) return r;

  const json::Value* strategies = snapshot.find("strategies");
  if (strategies == nullptr || !strategies->is_array()) return {};
  for (const json::Value& entry : strategies->as_array()) {
    const std::string id = entry.get_string("id");
    const json::Value* def_json = entry.find("def");
    if (id.empty() || def_json == nullptr) {
      return Result<void>::error("snapshot strategy missing id/def");
    }
    auto def = core::strategy_from_json(*def_json);
    if (!def.ok()) return Result<void>::error(def.error_message());
    Strategy strategy;
    strategy.def = std::move(def).value();
    strategy.name = entry.get_string("name", strategy.def.name);
    strategy.terminal = entry.get_bool("terminal");
    ResumeState& rs = strategy.resume;
    rs.status = execution_status_from_name(entry.get_string("status"))
                    .value_or(ExecutionStatus::kRunning);
    rs.current_state = entry.get_string("currentState");
    rs.started_at = time_from(entry, "startedNs");
    rs.finished_at = time_from(entry, "finishedNs");
    rs.transitions =
        static_cast<std::uint64_t>(entry.get_number("transitions"));
    rs.checks_executed =
        static_cast<std::uint64_t>(entry.get_number("checksExecuted"));
    if (const json::Value* history = entry.find("history");
        history != nullptr && history->is_array()) {
      for (const json::Value& visit : history->as_array()) {
        rs.history.push_back(StateVisit{
            visit.get_string("state"),
            time_from(visit, "enteredNs"),
            time_from(visit, "exitedNs"),
            visit.get_number("outcome"),
            visit.get_bool("viaException"),
        });
      }
    }
    if (const json::Value* applies = entry.find("applies");
        applies != nullptr && applies->is_array()) {
      for (const json::Value& apply : applies->as_array()) {
        ResumeState::ApplyProgress progress{
            apply.get_bool("intent"),
            static_cast<std::uint64_t>(apply.get_number("epoch")),
            apply.get_bool("acked"),
            apply.get_bool("ok"),
            {},
        };
        if (const json::Value* acks = apply.find("regionAcks");
            acks != nullptr && acks->is_object()) {
          for (const auto& [region, ok] : acks->as_object()) {
            progress.region_acks[region] = ok.is_bool() && ok.as_bool();
          }
        }
        rs.applies.push_back(std::move(progress));
      }
    }
    if (const json::Value* checks = entry.find("checks");
        checks != nullptr && checks->is_array()) {
      for (const json::Value& check : checks->as_array()) {
        rs.checks.push_back(ResumeState::CheckProgress{
            static_cast<int>(check.get_number("executed")),
            static_cast<int>(check.get_number("successes")),
            check.get_bool("done"),
            runtime::Time(static_cast<std::int64_t>(
                check.get_number("nextDeadlineNs"))),
        });
      }
    }
    rs.pending = pending_from_name(entry.get_string("pending", "none"));
    rs.target = entry.get_string("target");
    rs.pending_check = entry.get_string("pendingCheck");
    rs.exception_journaled = entry.get_bool("exceptionJournaled");
    rs.pending_reason = entry.get_string("pendingReason");
    strategies_[id] = std::move(strategy);
  }
  return {};
}

}  // namespace bifrost::engine
