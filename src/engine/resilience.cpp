#include "engine/resilience.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace bifrost::engine {
namespace {

runtime::Duration from_seconds(double s) {
  return std::chrono::duration_cast<runtime::Duration>(
      std::chrono::duration<double>(s));
}

double to_seconds(runtime::Duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Shared per-call state of the two decorators.
struct CallContext {
  runtime::Scheduler& clock;
  const SleepFn& sleep;
  const StatusListener& listener;
  util::Rng& rng;
  std::map<std::string, std::unique_ptr<CircuitBreaker>>& breakers;
  std::uint64_t& attempts;
};

void emit(const CallContext& ctx, StatusEvent::Type type,
          const std::string& target, double value, const std::string& detail) {
  if (!ctx.listener) return;
  StatusEvent event;
  event.time_seconds = to_seconds(ctx.clock.now());
  event.type = type;
  event.check = target;
  event.value = value;
  event.detail = detail;
  ctx.listener(event);
}

/// Retry loop + breaker gate shared by both edges. `attempt_fn` issues
/// one inner call; `make_error` builds the edge's error result type.
template <typename ResultT, typename AttemptFn, typename MakeErrorFn>
ResultT run_with_policy(const CallContext& ctx, const std::string& key,
                        const core::RetryPolicy& retry,
                        const core::CircuitBreakerPolicy& breaker_policy,
                        AttemptFn&& attempt_fn, MakeErrorFn&& make_error) {
  CircuitBreaker* breaker = nullptr;
  if (breaker_policy.enabled) {
    auto& slot = ctx.breakers[key];
    if (!slot) slot = std::make_unique<CircuitBreaker>(breaker_policy);
    breaker = slot.get();
  }

  const int max_attempts = std::max(1, retry.max_attempts);
  ResultT result = make_error("no attempt made");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const runtime::Time started = ctx.clock.now();
    if (breaker != nullptr && !breaker->allow(started)) {
      // Fail fast without touching the dependency; a later attempt (or
      // call) may find the breaker half-open once open_duration elapsed.
      result = make_error("circuit open for '" + key + "'");
    } else {
      ++ctx.attempts;
      result = attempt_fn();
      const runtime::Duration elapsed = ctx.clock.now() - started;
      if (result.ok() && retry.attempt_timeout > runtime::Duration::zero() &&
          elapsed > retry.attempt_timeout) {
        result = make_error("attempt against '" + key + "' took " +
                            std::to_string(to_seconds(elapsed)) +
                            "s, exceeding the " +
                            std::to_string(to_seconds(retry.attempt_timeout)) +
                            "s timeout");
      }
      if (breaker != nullptr) {
        const CircuitBreaker::Transition transition =
            result.ok() ? breaker->record_success()
                        : breaker->record_failure(ctx.clock.now());
        if (transition == CircuitBreaker::Transition::kOpened) {
          emit(ctx, StatusEvent::Type::kCircuitOpened, key, 0.0,
               "breaker open until t=" +
                   std::to_string(to_seconds(breaker->open_until())) + "s");
        } else if (transition == CircuitBreaker::Transition::kClosed) {
          emit(ctx, StatusEvent::Type::kCircuitClosed, key, 0.0, "recovered");
        }
      }
    }
    if (result.ok() || attempt == max_attempts) break;
    emit(ctx, StatusEvent::Type::kRetried, key, static_cast<double>(attempt),
         result.error_message());
    if (ctx.sleep) ctx.sleep(backoff_delay(retry, attempt, ctx.rng));
  }
  return result;
}

std::string provider_key(const core::ProviderConfig& provider) {
  return provider.host + ":" + std::to_string(provider.port);
}

const CircuitBreaker* find_breaker(
    const std::map<std::string, std::unique_ptr<CircuitBreaker>>& breakers,
    const std::string& key) {
  const auto it = breakers.find(key);
  return it != breakers.end() ? it->second.get() : nullptr;
}

}  // namespace

SleepFn thread_sleeper() {
  return [](runtime::Duration delay) { std::this_thread::sleep_for(delay); };
}

runtime::Duration backoff_base(const core::RetryPolicy& policy, int attempt) {
  const double cap = to_seconds(policy.max_backoff);
  double delay = to_seconds(policy.initial_backoff);
  for (int i = 1; i < attempt && delay < cap; ++i) {
    delay *= std::max(1.0, policy.multiplier);
  }
  return from_seconds(std::min(delay, cap));
}

runtime::Duration backoff_delay(const core::RetryPolicy& policy, int attempt,
                                util::Rng& rng) {
  const double base = to_seconds(backoff_base(policy, attempt));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  return from_seconds(base * (1.0 + jitter * rng.uniform()));
}

bool CircuitBreaker::allow(runtime::Time now) {
  if (!policy_.enabled) return true;
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (now >= open_until_) {
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        return true;
      }
      return false;
  }
  return true;
}

CircuitBreaker::Transition CircuitBreaker::record_success() {
  if (!policy_.enabled) return Transition::kNone;
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen &&
      ++probe_successes_ >= policy_.half_open_probes) {
    state_ = State::kClosed;
    return Transition::kClosed;
  }
  return Transition::kNone;
}

CircuitBreaker::Transition CircuitBreaker::record_failure(runtime::Time now) {
  if (!policy_.enabled) return Transition::kNone;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       ++consecutive_failures_ >= policy_.failure_threshold)) {
    state_ = State::kOpen;
    open_until_ = now + policy_.open_duration;
    consecutive_failures_ = 0;
    return Transition::kOpened;
  }
  return Transition::kNone;
}

ResilientMetricsClient::ResilientMetricsClient(MetricsClient& inner,
                                               runtime::Scheduler& clock,
                                               SleepFn sleep,
                                               std::uint64_t jitter_seed)
    : inner_(inner), clock_(clock), sleep_(std::move(sleep)),
      rng_(jitter_seed) {}

util::Result<std::optional<double>> ResilientMetricsClient::query(
    const core::ProviderConfig& provider, const std::string& query) {
  using R = util::Result<std::optional<double>>;
  const CallContext ctx{clock_, sleep_, listener_, rng_, breakers_, attempts_};
  return run_with_policy<R>(
      ctx, provider_key(provider), provider.retry, provider.circuit_breaker,
      [&] { return inner_.query(provider, query); },
      [](std::string message) { return R::error(std::move(message)); });
}

const CircuitBreaker* ResilientMetricsClient::breaker(
    const std::string& key) const {
  return find_breaker(breakers_, key);
}

ResilientProxyController::ResilientProxyController(ProxyController& inner,
                                                   runtime::Scheduler& clock,
                                                   SleepFn sleep,
                                                   std::uint64_t jitter_seed)
    : inner_(inner), clock_(clock), sleep_(std::move(sleep)),
      rng_(jitter_seed) {}

util::Result<void> ResilientProxyController::apply(
    const core::ServiceDef& service, const proxy::ProxyConfig& config) {
  using R = util::Result<void>;
  const CallContext ctx{clock_, sleep_, listener_, rng_, breakers_, attempts_};
  return run_with_policy<R>(
      ctx, service.name, service.retry, service.circuit_breaker,
      [&] { return inner_.apply(service, config); },
      [](std::string message) { return R::error(std::move(message)); });
}

util::Result<void> ResilientProxyController::apply_region(
    const core::ServiceDef& service, const core::RegionDef& region,
    const proxy::ProxyConfig& config) {
  using R = util::Result<void>;
  const CallContext ctx{clock_, sleep_, listener_, rng_, breakers_, attempts_};
  return run_with_policy<R>(
      ctx, service.name + "/" + region.name, service.retry,
      service.circuit_breaker,
      [&] { return inner_.apply_region(service, region, config); },
      [](std::string message) { return R::error(std::move(message)); });
}

const CircuitBreaker* ResilientProxyController::breaker(
    const std::string& key) const {
  return find_breaker(breakers_, key);
}

}  // namespace bifrost::engine
