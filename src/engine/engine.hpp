// The Bifrost engine: owns strategy executions on one scheduler, keeps
// thread-safe status records (snapshots are served from the engine's own
// bookkeeping, never by poking execution internals across threads), and
// maintains the status event log that feeds the CLI/dashboard stream.
//
// Durability: with Options::journal set, the engine is the journal's
// single writer — every execution's transition records funnel through
// it (DurabilitySink), it interleaves compacted snapshots, and after a
// restart recover() + reconcile() rebuild the executions from the
// journal and re-align the proxies with the journaled intents.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/execution.hpp"
#include "engine/interfaces.hpp"
#include "engine/journal.hpp"
#include "engine/recovery.hpp"
#include "runtime/executor.hpp"
#include "runtime/scheduler.hpp"

namespace bifrost::engine {

/// Thread-safe view of one execution's progress.
struct StrategySnapshot {
  std::string id;
  std::string name;
  ExecutionStatus status = ExecutionStatus::kPending;
  std::string current_state;
  double started_seconds = 0.0;
  double finished_seconds = 0.0;
  std::uint64_t transitions = 0;
  std::uint64_t checks_executed = 0;
  std::vector<StateVisit> history;
  double enactment_delay_seconds = 0.0;  ///< valid once finished
};

class Engine : private DurabilitySink {
 public:
  struct Options {
    std::size_t event_log_capacity = 100000;
    /// Write-ahead journal (not owned; may be null = no durability).
    Journal* journal = nullptr;
    /// A compacted kSnapshot record is interleaved after every this
    /// many appended records, so replay is O(recent). 0 disables.
    std::size_t snapshot_every = 256;
    /// Parallel check scheduler (not owned; must outlive the engine):
    /// check evaluations of every execution run as jobs on this
    /// executor — typically a runtime::WorkStealingPool — instead of
    /// inline on the scheduler thread. The MetricsClient must be
    /// thread-safe when set. Null = inline evaluation (paper behavior).
    runtime::Executor* check_executor = nullptr;
    /// Parallel fan-out for multi-region config pushes (not owned; must
    /// outlive the engine). Must be a real thread pool, never a
    /// simulated executor — see engine/fleet.hpp. Null = sequential
    /// canary-order fan-out (the deterministic arm).
    runtime::Executor* fleet_executor = nullptr;
  };

  Engine(runtime::Scheduler& scheduler, MetricsClient& metrics,
         ProxyController& proxies, Options options);
  Engine(runtime::Scheduler& scheduler, MetricsClient& metrics,
         ProxyController& proxies)
      : Engine(scheduler, metrics, proxies, Options{}) {}
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validates and schedules a strategy; returns its id or the
  /// validation error. `extra_listener` (optional) receives every event
  /// of this strategy in addition to the engine log. With a journal
  /// attached, strategies using custom in-process check evaluators are
  /// rejected (they cannot be reconstructed from the journal).
  util::Result<std::string> submit(core::StrategyDef def,
                                   StatusListener extra_listener = nullptr);

  /// Requests an abort (delivered on the scheduler thread).
  bool abort(const std::string& id, const std::string& reason = "user abort");

  /// Rebuilds bookkeeping and live executions from a freshly read
  /// journal (call before the scheduler delivers timers). Non-terminal
  /// strategies are resumed exactly where their last record left off;
  /// a kRecovered marker is journaled and emitted for each.
  util::Result<void> recover(const std::vector<JournalRecord>& records);

  /// Re-aligns every proxy with the newest journaled apply intent:
  /// fetches the proxy's installed epoch, re-applies the journaled
  /// config (same epoch — the proxy dedupes) when the proxy is behind
  /// or unreadable, and journals/emits a kReconciled marker per
  /// service. Federated services converge region by region: every
  /// region is brought up to the fleet epoch floor (regions already at
  /// or past it ack as no-ops), each convergence emitting a
  /// kRegionResynced event. Marks the engine ready.
  util::Result<void> reconcile();

  /// Lighter-weight re-convergence for federated services only, safe to
  /// call on a live engine (e.g. after a network partition heals):
  /// walks the journaled intents and re-pushes the fleet-epoch config
  /// to every region still behind the floor. Returns the number of
  /// regions resynced.
  util::Result<int> resync_regions();

  /// True once the engine serves traffic safely: immediately for
  /// journal-less engines, after recover()+reconcile() otherwise.
  [[nodiscard]] bool ready() const { return ready_.load(); }

  /// Appends an externally produced event (e.g. from the resilience
  /// decorators wrapping the metrics/proxy clients) to the engine event
  /// log; the sequence number is assigned here. Strategy bookkeeping is
  /// untouched — these events carry no (or a foreign) strategy id.
  void log_event(StatusEvent event);

  /// Listener adapter for log_event, for wiring decorators:
  /// `resilient_metrics.set_listener(engine.event_logger())`.
  [[nodiscard]] StatusListener event_logger() {
    return [this](const StatusEvent& event) { log_event(event); };
  }

  [[nodiscard]] std::optional<StrategySnapshot> status(
      const std::string& id) const;
  [[nodiscard]] std::vector<StrategySnapshot> list() const;
  [[nodiscard]] std::size_t running_count() const;

  /// Events with sequence > `after`, up to `max`; blocks up to `wait`
  /// when none are available yet (long-poll support). Pass wait = 0 for
  /// a non-blocking read.
  [[nodiscard]] std::vector<StatusEvent> events_since(
      std::uint64_t after, std::size_t max,
      std::chrono::milliseconds wait) const;

  [[nodiscard]] std::uint64_t last_event_sequence() const;

  /// Graphviz rendering of a submitted strategy's automaton (the
  /// definition is immutable after submit, so this is thread-safe).
  [[nodiscard]] std::optional<std::string> dot(const std::string& id) const;

 private:
  void on_event(StatusEvent event, const StatusListener& extra);

  /// DurabilitySink: executions deliver their transition records here.
  void record(RecordType type, json::Value data) override;

  /// Single choke point for journal writes: appends, feeds the live
  /// tracker (snapshot source), interleaves snapshots. Propagates
  /// whatever Journal::append throws (sim::CrashInjected in tests).
  void append_record(RecordType type, json::Value data);

  [[nodiscard]] StrategyExecution::Options execution_options();
  [[nodiscard]] static StrategySnapshot snapshot_from_resume(
      const std::string& id, const StateTracker::Strategy& strategy);

  /// Converges every region of a federated service to the intent's
  /// fleet epoch (fetch, re-apply when behind, emit kRegionResynced).
  /// Appends "region=verdict" pairs to `detail`; returns the number of
  /// regions actually re-pushed.
  int converge_regions(
      const core::ServiceDef& service, const StateTracker::Intent* fleet,
      const std::map<std::string, StateTracker::Intent>& region_intents,
      runtime::Time now, std::string& detail);

  runtime::Scheduler& scheduler_;
  MetricsClient& metrics_;
  ProxyController& proxies_;
  Options options_;

  mutable std::mutex mutex_;
  mutable std::condition_variable event_cv_;
  std::map<std::string, std::unique_ptr<StrategyExecution>> executions_;
  std::map<std::string, StrategySnapshot> records_;
  std::deque<StatusEvent> events_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t next_id_ = 1;

  /// Journal + live tracker + epoch counters share one mutex because
  /// submit() journals from API threads while executions journal from
  /// the scheduler thread. Never held together with mutex_.
  std::mutex journal_mutex_;
  StateTracker tracker_;
  std::map<std::string, std::uint64_t> epochs_;
  std::uint64_t records_appended_ = 0;
  std::atomic<bool> ready_{false};
};

}  // namespace bifrost::engine
