// The Bifrost engine: owns strategy executions on one scheduler, keeps
// thread-safe status records (snapshots are served from the engine's own
// bookkeeping, never by poking execution internals across threads), and
// maintains the status event log that feeds the CLI/dashboard stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/execution.hpp"
#include "engine/interfaces.hpp"
#include "runtime/scheduler.hpp"

namespace bifrost::engine {

/// Thread-safe view of one execution's progress.
struct StrategySnapshot {
  std::string id;
  std::string name;
  ExecutionStatus status = ExecutionStatus::kPending;
  std::string current_state;
  double started_seconds = 0.0;
  double finished_seconds = 0.0;
  std::uint64_t transitions = 0;
  std::uint64_t checks_executed = 0;
  std::vector<StateVisit> history;
  double enactment_delay_seconds = 0.0;  ///< valid once finished
};

class Engine {
 public:
  struct Options {
    std::size_t event_log_capacity = 100000;
  };

  Engine(runtime::Scheduler& scheduler, MetricsClient& metrics,
         ProxyController& proxies, Options options);
  Engine(runtime::Scheduler& scheduler, MetricsClient& metrics,
         ProxyController& proxies)
      : Engine(scheduler, metrics, proxies, Options{}) {}
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validates and schedules a strategy; returns its id or the
  /// validation error. `extra_listener` (optional) receives every event
  /// of this strategy in addition to the engine log.
  util::Result<std::string> submit(core::StrategyDef def,
                                   StatusListener extra_listener = nullptr);

  /// Requests an abort (delivered on the scheduler thread).
  bool abort(const std::string& id, const std::string& reason = "user abort");

  /// Appends an externally produced event (e.g. from the resilience
  /// decorators wrapping the metrics/proxy clients) to the engine event
  /// log; the sequence number is assigned here. Strategy bookkeeping is
  /// untouched — these events carry no (or a foreign) strategy id.
  void log_event(StatusEvent event);

  /// Listener adapter for log_event, for wiring decorators:
  /// `resilient_metrics.set_listener(engine.event_logger())`.
  [[nodiscard]] StatusListener event_logger() {
    return [this](const StatusEvent& event) { log_event(event); };
  }

  [[nodiscard]] std::optional<StrategySnapshot> status(
      const std::string& id) const;
  [[nodiscard]] std::vector<StrategySnapshot> list() const;
  [[nodiscard]] std::size_t running_count() const;

  /// Events with sequence > `after`, up to `max`; blocks up to `wait`
  /// when none are available yet (long-poll support). Pass wait = 0 for
  /// a non-blocking read.
  [[nodiscard]] std::vector<StatusEvent> events_since(
      std::uint64_t after, std::size_t max,
      std::chrono::milliseconds wait) const;

  [[nodiscard]] std::uint64_t last_event_sequence() const;

  /// Graphviz rendering of a submitted strategy's automaton (the
  /// definition is immutable after submit, so this is thread-safe).
  [[nodiscard]] std::optional<std::string> dot(const std::string& id) const;

 private:
  void on_event(StatusEvent event, const StatusListener& extra);

  runtime::Scheduler& scheduler_;
  MetricsClient& metrics_;
  ProxyController& proxies_;
  Options options_;

  mutable std::mutex mutex_;
  mutable std::condition_variable event_cv_;
  std::map<std::string, std::unique_ptr<StrategyExecution>> executions_;
  std::map<std::string, StrategySnapshot> records_;
  std::deque<StatusEvent> events_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t next_id_ = 1;
};

}  // namespace bifrost::engine
