// Write-ahead journal for strategy enactment. Every externally visible
// transition of an execution — submit, start, state entry, check
// execution results, proxy apply intents/acks, terminal outcomes — is
// appended as one framed record BEFORE the engine acts on it, so a
// crashed engine can replay the journal and resume exactly where it
// stopped (see engine/recovery.hpp).
//
// On-disk format (little-endian):
//
//   record  := u32 length | u32 crc32 | payload[length]
//   payload := compact JSON {"type": "<name>", "data": {...}}
//
// The CRC covers only the payload bytes. A torn write at the tail (short
// frame, length past EOF, CRC mismatch) marks the journal as truncated:
// the reader returns every record up to the last valid one plus the
// byte offset where validity ends, and recovery truncates the file there
// instead of failing. Corruption that is NOT at the tail is
// indistinguishable from a torn tail by design — everything after the
// first bad frame is dropped.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "util/result.hpp"

namespace bifrost::engine {

/// Every record type the journal knows. Order is append-only: new types
/// go at the end so serialized names stay stable.
enum class RecordType {
  kSubmit,             ///< strategy accepted: id, name, full StrategyDef
  kStarted,            ///< execution began running
  kStateEntered,       ///< automaton entered a state
  kCheckExecuted,      ///< one check execution finished (result + aggregates)
  kStateCompleted,     ///< all checks done, weighted outcome computed
  kExceptionTriggered, ///< exception check fired, fallback transition
  kApplyIntent,        ///< about to push routing to a proxy (WAL: pre-call)
  kApplyAck,           ///< proxy apply returned (ok or error)
  kFinished,           ///< terminal state reached (success/rollback)
  kAborted,            ///< execution aborted by operator or rollback failure
  kSnapshot,           ///< compacted tracker state; replay starts here
  kRecovered,          ///< marker: engine recovered executions from journal
  kReconciled,         ///< marker: proxy reconciliation pass completed
  kRegionAck,          ///< one region of a fleet push returned (ok or error)
};

[[nodiscard]] const char* record_type_name(RecordType type);
[[nodiscard]] std::optional<RecordType> record_type_from_name(
    std::string_view name);

struct JournalRecord {
  RecordType type = RecordType::kSubmit;
  json::Value data;  ///< record payload, always a JSON object
};

/// Where a StrategyExecution reports its transitions for journaling.
/// The Engine implements this by appending to its journal (and feeding
/// its replay tracker for snapshot compaction). Called synchronously on
/// the scheduler thread, before the engine acts on the transition.
class DurabilitySink {
 public:
  virtual ~DurabilitySink() = default;
  virtual void record(RecordType type, json::Value data) = 0;
};

/// Append sink. Implementations must make append atomic with respect to
/// the reader's framing: a record is either fully visible or truncated.
class Journal {
 public:
  virtual ~Journal() = default;

  virtual util::Result<void> append(RecordType type, json::Value data) = 0;
  /// Forces buffered records to durable storage.
  virtual util::Result<void> sync() = 0;
  /// Records appended through this instance (not pre-existing ones).
  [[nodiscard]] virtual std::uint64_t records_written() const = 0;
};

/// In-memory journal for tests and the simulated crash harness: the
/// record vector plays the role of the disk and outlives simulated
/// engine incarnations.
class MemoryJournal : public Journal {
 public:
  util::Result<void> append(RecordType type, json::Value data) override;
  util::Result<void> sync() override { return {}; }
  [[nodiscard]] std::uint64_t records_written() const override {
    return records_.size();
  }

  [[nodiscard]] const std::vector<JournalRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

 private:
  std::vector<JournalRecord> records_;
};

/// Durable file journal with batched fsync: `sync_every = 1` fsyncs
/// after every record (safest, slowest); larger batches trade the last
/// few records for throughput — replay tolerates the missing tail.
class FileJournal : public Journal {
 public:
  struct Options {
    std::size_t sync_every = 1;
  };

  static util::Result<std::unique_ptr<FileJournal>> open(
      const std::string& path, Options options);
  static util::Result<std::unique_ptr<FileJournal>> open(
      const std::string& path) {
    return open(path, Options{});
  }
  ~FileJournal() override;

  FileJournal(const FileJournal&) = delete;
  FileJournal& operator=(const FileJournal&) = delete;

  util::Result<void> append(RecordType type, json::Value data) override;
  util::Result<void> sync() override;
  [[nodiscard]] std::uint64_t records_written() const override {
    return written_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  FileJournal(int fd, std::string path, Options options);

  int fd_ = -1;
  std::string path_;
  Options options_;
  std::uint64_t written_ = 0;
  std::size_t unsynced_ = 0;
};

/// Result of scanning a journal: the valid prefix and where it ends.
struct JournalReadResult {
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< offset just past the last valid record
  bool truncated_tail = false;    ///< trailing bytes failed framing/CRC
  std::string truncation_reason;  ///< human-readable cause when truncated
};

/// Encodes one record into its framed on-disk bytes. Exposed so tests
/// can build fixture files (including deliberately corrupted ones).
[[nodiscard]] std::string frame_record(RecordType type,
                                       const json::Value& data);

/// Scans framed records from a buffer, stopping at the first invalid
/// frame. Never fails: corruption only shortens the result.
[[nodiscard]] JournalReadResult parse_journal_bytes(std::string_view bytes);

/// Reads and scans a journal file. Errors only on I/O failure (missing
/// file, unreadable); corruption is reported via the result flags.
util::Result<JournalReadResult> read_journal_file(const std::string& path);

/// Truncates `path` to `valid_bytes`, discarding a corrupted tail.
util::Result<void> truncate_journal_file(const std::string& path,
                                         std::uint64_t valid_bytes);

}  // namespace bifrost::engine
