#include "engine/execution.hpp"

#include <chrono>

#include "util/log.hpp"

namespace bifrost::engine {
namespace {

/// EvalContext bound to the engine's MetricsClient and the strategy's
/// provider table.
class ClientEvalContext final : public core::EvalContext {
 public:
  ClientEvalContext(MetricsClient& client, const core::StrategyDef& def,
                    double now_seconds)
      : client_(client), def_(def), now_seconds_(now_seconds) {}

  util::Result<std::optional<double>> query(const std::string& provider,
                                            const std::string& query) override {
    const auto it = def_.providers.find(provider);
    if (it == def_.providers.end()) {
      return util::Result<std::optional<double>>::error(
          "unknown provider '" + provider + "'");
    }
    return client_.query(it->second, query);
  }

  [[nodiscard]] double now_seconds() const override { return now_seconds_; }

 private:
  MetricsClient& client_;
  const core::StrategyDef& def_;
  double now_seconds_;
};

}  // namespace

StrategyExecution::StrategyExecution(std::string id,
                                     runtime::Scheduler& scheduler,
                                     MetricsClient& metrics,
                                     ProxyController& proxies,
                                     core::StrategyDef def,
                                     StatusListener listener, Options options)
    : id_(std::move(id)),
      scheduler_(scheduler),
      metrics_(metrics),
      proxies_(proxies),
      def_(std::move(def)),
      listener_(std::move(listener)),
      options_(options) {}

double StrategyExecution::now_seconds() const {
  return std::chrono::duration<double>(scheduler_.now()).count();
}

void StrategyExecution::emit(StatusEvent::Type type, const std::string& state,
                             const std::string& check, double value,
                             const std::string& detail) {
  if (!listener_) return;
  StatusEvent event;
  event.time_seconds = now_seconds();
  event.strategy_id = id_;
  event.type = type;
  event.state = state;
  event.check = check;
  event.value = value;
  event.detail = detail;
  listener_(event);
}

void StrategyExecution::start() {
  if (status_ != ExecutionStatus::kPending) return;
  status_ = ExecutionStatus::kRunning;
  started_at_ = scheduler_.now();
  emit(StatusEvent::Type::kStarted, def_.initial_state);
  enter_state(def_.initial_state);
}

void StrategyExecution::abort(const std::string& reason) {
  if (status_ != ExecutionStatus::kRunning &&
      status_ != ExecutionStatus::kPending) {
    return;
  }
  ++generation_;  // invalidate all pending timers
  if (!history_.empty() && history_.back().exited == runtime::Time{0}) {
    history_.back().exited = scheduler_.now();
  }
  finished_at_ = scheduler_.now();
  status_ = ExecutionStatus::kAborted;
  // Emit after the status flip so listeners observe the final state.
  emit(StatusEvent::Type::kAborted, current_state_, "", 0.0, reason);
}

void StrategyExecution::enter_state(const std::string& name) {
  const core::StateDef* state = def_.find_state(name);
  if (state == nullptr) {  // unreachable after validation
    emit(StatusEvent::Type::kError, name, "", 0.0, "state not found");
    finish(ExecutionStatus::kFailed);
    return;
  }
  ++generation_;
  const std::uint64_t gen = generation_;
  current_state_ = name;
  state_ = state;
  dwell_elapsed_ = state->min_duration <= runtime::Duration::zero();
  history_.push_back(StateVisit{name, scheduler_.now(), runtime::Time{0}, 0.0,
                                false});
  emit(StatusEvent::Type::kStateEntered, name);

  if (!apply_routing(*state)) return;  // diverted into the rollback path

  if (state->is_final()) {
    history_.back().exited = scheduler_.now();
    finish(state->final_kind == core::FinalKind::kSuccess
               ? ExecutionStatus::kSucceeded
               : ExecutionStatus::kRolledBack);
    return;
  }

  checks_.clear();
  checks_.reserve(state->checks.size());
  for (const core::CheckDef& check : state->checks) {
    checks_.push_back(CheckRuntime{&check, 0, 0, false});
  }
  for (std::size_t i = 0; i < checks_.size(); ++i) schedule_check(i);

  if (!dwell_elapsed_) {
    scheduler_.schedule_after(state->min_duration, [this, gen] {
      if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
      dwell_elapsed_ = true;
      maybe_complete_state();
    });
  }
  // A state with no checks and no dwell completes immediately (but via
  // the scheduler so re-entrant transitions unwind).
  if (checks_.empty() && dwell_elapsed_) {
    scheduler_.post([this, gen] {
      if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
      maybe_complete_state();
    });
  }
}

bool StrategyExecution::apply_routing(const core::StateDef& state) {
  for (const core::ServiceRouting& routing : state.routing) {
    const core::ServiceDef* service = def_.find_service(routing.service);
    if (service == nullptr) continue;  // validated earlier
    auto config = build_proxy_config(*service, routing);
    if (!config.ok()) {
      emit(StatusEvent::Type::kError, state.name, "", 0.0,
           config.error_message());
      continue;
    }
    auto applied = proxies_.apply(*service, config.value());
    if (!applied.ok()) {
      // Routing is the engine's hold on live traffic: a state whose
      // split cannot be installed (past the retry budget of the
      // resilience layer, if configured) must not run its checks
      // against the wrong traffic mix. Divert to the rollback path —
      // unless this state IS a final state, where the execution is
      // ending anyway and the failure is only reported.
      emit(StatusEvent::Type::kError, state.name, routing.service, 0.0,
           "proxy update failed: " + applied.error_message());
      if (!state.is_final()) {
        rollback_or_abort("proxy update for service '" + routing.service +
                          "' failed: " + applied.error_message());
        return false;
      }
      continue;
    }
    emit(StatusEvent::Type::kRoutingApplied, state.name, routing.service);
  }
  return true;
}

void StrategyExecution::rollback_or_abort(const std::string& reason) {
  const core::StateDef* rollback = nullptr;
  for (const core::StateDef& state : def_.states) {
    if (state.final_kind == core::FinalKind::kRollback) {
      rollback = &state;
      break;
    }
  }
  if (rollback == nullptr || rollback->name == current_state_) {
    abort(reason);
    return;
  }
  emit(StatusEvent::Type::kDegraded, current_state_, "", 0.0,
       reason + "; rolling back");
  transition_to(rollback->name, /*via_exception=*/true);
}

void StrategyExecution::schedule_check(std::size_t check_index) {
  const std::uint64_t gen = generation_;
  const core::CheckDef& check = *checks_[check_index].def;
  // Node-style chained timer: the next execution is armed `interval`
  // after the previous one *completes*, so engine-side processing delay
  // accumulates — the effect measured in the paper's Figures 8/10.
  scheduler_.schedule_after(check.interval, [this, gen, check_index] {
    if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
    run_check_execution(check_index);
  });
}

void StrategyExecution::run_check_execution(std::size_t check_index) {
  CheckRuntime& runtime = checks_[check_index];
  const core::CheckDef& check = *runtime.def;

  std::string degraded_detail;
  const bool success = evaluate_check_once(check, degraded_detail);
  ++runtime.executed;
  ++checks_executed_;
  if (success) ++runtime.successes;
  if (!degraded_detail.empty()) {
    // A provider failed past its budget during this execution; the
    // check outcome degrades to whatever the remaining conditions say,
    // but the outage must be visible on the event stream (not only in
    // debug logs) so dashboards and operators can tell "metrics said
    // no" apart from "metrics were unreachable".
    emit(StatusEvent::Type::kDegraded, current_state_, check.name,
         success ? 1.0 : 0.0, degraded_detail);
  }
  emit(StatusEvent::Type::kCheckExecuted, current_state_, check.name,
       success ? 1.0 : 0.0);

  if (check.kind == core::CheckKind::kException && !success) {
    // A failing exception check rolls back immediately (paper §3.2).
    emit(StatusEvent::Type::kExceptionTriggered, current_state_, check.name);
    transition_to(check.fallback_state, /*via_exception=*/true);
    return;
  }

  if (runtime.executed >= check.executions) {
    runtime.done = true;
    double contribution;
    if (check.kind == core::CheckKind::kBasic) {
      contribution = core::map_through_thresholds(
          check.thresholds, check.outputs,
          static_cast<double>(runtime.successes));
    } else {
      // All executions of an exception check succeeded: its aggregated
      // outcome equals n (paper §3.2).
      contribution = static_cast<double>(runtime.successes);
    }
    emit(StatusEvent::Type::kCheckCompleted, current_state_, check.name,
         contribution);
    maybe_complete_state();
    return;
  }
  schedule_check(check_index);
}

bool StrategyExecution::evaluate_check_once(const core::CheckDef& check,
                                            std::string& degraded_detail) {
  ClientEvalContext context(metrics_, def_, now_seconds());
  for (const core::MetricCondition& condition : check.conditions) {
    auto value = context.query(condition.provider, condition.query);
    if (!value.ok()) {
      util::log_debug("execution", id_, ": provider error for '",
                      condition.query, "': ", value.error_message());
      if (!degraded_detail.empty()) degraded_detail += "; ";
      degraded_detail +=
          "provider '" + condition.provider + "': " + value.error_message();
      if (condition.fail_on_no_data) return false;
      continue;
    }
    if (!value.value().has_value()) {
      if (condition.fail_on_no_data) return false;
      continue;
    }
    if (!condition.validator.eval(*value.value())) return false;
  }
  if (check.custom && !check.custom(context)) return false;
  return true;
}

void StrategyExecution::maybe_complete_state() {
  if (!dwell_elapsed_) return;
  for (const CheckRuntime& check : checks_) {
    if (!check.done) return;
  }
  complete_state();
}

void StrategyExecution::complete_state() {
  std::vector<std::pair<double, double>> contributions;
  contributions.reserve(checks_.size());
  for (const CheckRuntime& runtime : checks_) {
    const core::CheckDef& check = *runtime.def;
    double value;
    if (check.kind == core::CheckKind::kBasic) {
      value = core::map_through_thresholds(
          check.thresholds, check.outputs,
          static_cast<double>(runtime.successes));
    } else {
      value = static_cast<double>(runtime.successes);
    }
    contributions.emplace_back(value, check.weight);
  }
  const double outcome = core::weighted_outcome(contributions);
  history_.back().outcome = outcome;
  emit(StatusEvent::Type::kStateCompleted, current_state_, "", outcome);

  const std::string& next =
      state_->transitions.empty()
          ? current_state_  // unreachable: non-final states have transitions
          : core::next_state_name(*state_, outcome);
  transition_to(next, /*via_exception=*/false);
}

void StrategyExecution::transition_to(const std::string& next,
                                      bool via_exception) {
  history_.back().exited = scheduler_.now();
  history_.back().via_exception = via_exception;
  if (++transitions_ > options_.max_transitions) {
    emit(StatusEvent::Type::kError, current_state_, "", 0.0,
         "transition limit exceeded (loop guard)");
    finish(ExecutionStatus::kFailed);
    return;
  }
  enter_state(next);
}

void StrategyExecution::finish(ExecutionStatus status) {
  ++generation_;
  status_ = status;
  finished_at_ = scheduler_.now();
  emit(StatusEvent::Type::kFinished, current_state_, "",
       status == ExecutionStatus::kSucceeded ? 1.0 : 0.0,
       status == ExecutionStatus::kSucceeded    ? "success"
       : status == ExecutionStatus::kRolledBack ? "rollback"
                                                : "failed");
}

runtime::Duration StrategyExecution::enactment_delay() const {
  // Nominal time = sum of specified durations of the transient states
  // actually visited (a check's first execution waits one interval, but
  // interval * executions already accounts for that).
  runtime::Duration specified{0};
  for (const StateVisit& visit : history_) {
    const core::StateDef* state = def_.find_state(visit.state);
    if (state != nullptr && !state->is_final()) {
      specified += state->duration();
    }
  }
  const runtime::Duration actual = finished_at_ - started_at_;
  return actual - specified;
}

}  // namespace bifrost::engine
