#include "engine/execution.hpp"

#include <algorithm>

#include <chrono>
#include <string_view>
#include <utility>

#include "util/log.hpp"

namespace bifrost::engine {
namespace {

/// EvalContext bound to the engine's MetricsClient and the strategy's
/// provider table.
class ClientEvalContext final : public core::EvalContext {
 public:
  ClientEvalContext(MetricsClient& client, const core::StrategyDef& def,
                    double now_seconds)
      : client_(client), def_(def), now_seconds_(now_seconds) {}

  util::Result<std::optional<double>> query(const std::string& provider,
                                            const std::string& query) override {
    const auto it = def_.providers.find(provider);
    if (it == def_.providers.end()) {
      return util::Result<std::optional<double>>::error(
          "unknown provider '" + provider + "'");
    }
    return client_.query(it->second, query);
  }

  [[nodiscard]] double now_seconds() const override { return now_seconds_; }

 private:
  MetricsClient& client_;
  const core::StrategyDef& def_;
  double now_seconds_;
};

}  // namespace

const char* execution_status_name(ExecutionStatus status) {
  switch (status) {
    case ExecutionStatus::kPending:
      return "pending";
    case ExecutionStatus::kRunning:
      return "running";
    case ExecutionStatus::kSucceeded:
      return "succeeded";
    case ExecutionStatus::kRolledBack:
      return "rolled_back";
    case ExecutionStatus::kAborted:
      return "aborted";
    case ExecutionStatus::kFailed:
      return "failed";
  }
  return "?";
}

std::optional<ExecutionStatus> execution_status_from_name(
    std::string_view name) {
  static constexpr ExecutionStatus kAll[] = {
      ExecutionStatus::kPending,    ExecutionStatus::kRunning,
      ExecutionStatus::kSucceeded,  ExecutionStatus::kRolledBack,
      ExecutionStatus::kAborted,    ExecutionStatus::kFailed,
  };
  for (ExecutionStatus s : kAll) {
    if (name == execution_status_name(s)) return s;
  }
  return std::nullopt;
}

StrategyExecution::StrategyExecution(std::string id,
                                     runtime::Scheduler& scheduler,
                                     MetricsClient& metrics,
                                     ProxyController& proxies,
                                     core::StrategyDef def,
                                     StatusListener listener, Options options)
    : id_(std::move(id)),
      scheduler_(scheduler),
      metrics_(metrics),
      proxies_(proxies),
      def_(std::move(def)),
      listener_(std::move(listener)),
      options_(std::move(options)),
      fleet_(proxies) {
  fleet_.set_executor(options_.fleet_executor);
}

StrategyExecution::~StrategyExecution() {
  // Quiesce off-thread check evaluations first: the exclusive lock
  // waits out any job currently reading `this` (each such job has
  // already armed its tracked marshalling timer by the time it releases
  // its shared lock), and marks later-starting jobs dead so they return
  // without touching the destroyed execution. Only then cancel the
  // tracked timers — including marshalling timers the jobs just armed.
  {
    const std::unique_lock<std::shared_mutex> lock(async_guard_->mutex);
    async_guard_->dead = true;
  }
  const std::lock_guard<std::mutex> lock(timers_mutex_);
  for (const runtime::TimerId id : live_timers_) scheduler_.cancel(id);
}

double StrategyExecution::now_seconds() const {
  return std::chrono::duration<double>(scheduler_.now()).count();
}

std::int64_t StrategyExecution::now_ns() const {
  return scheduler_.now().count();
}

void StrategyExecution::arm_at(runtime::Time when,
                               std::function<void()> body) {
  // The callback needs its own id to deregister itself, but the id only
  // exists after schedule_at returns — hand it over through a token.
  auto token = std::make_shared<runtime::TimerId>(runtime::kInvalidTimer);
  const runtime::TimerId id = scheduler_.schedule_at(
      when, [this, token, body = std::move(body)] {
        {
          const std::lock_guard<std::mutex> lock(timers_mutex_);
          live_timers_.erase(*token);
        }
        body();
      });
  {
    const std::lock_guard<std::mutex> lock(timers_mutex_);
    *token = id;
    live_timers_.insert(id);
  }
}

void StrategyExecution::emit(StatusEvent::Type type, const std::string& state,
                             const std::string& check, double value,
                             const std::string& detail) {
  if (!listener_) return;
  StatusEvent event;
  event.time_seconds = now_seconds();
  event.strategy_id = id_;
  event.type = type;
  event.state = state;
  event.check = check;
  event.value = value;
  event.detail = detail;
  listener_(event);
}

void StrategyExecution::journal(RecordType type, json::Object data) {
  if (options_.durability == nullptr) return;
  data["id"] = id_;
  options_.durability->record(type, json::Value(std::move(data)));
}

void StrategyExecution::request_start() {
  arm_at(scheduler_.now(), [this] { start(); });
}

void StrategyExecution::request_abort(std::string reason) {
  arm_at(scheduler_.now(),
         [this, reason = std::move(reason)] { abort(reason); });
}

void StrategyExecution::start() {
  if (status_ != ExecutionStatus::kPending) return;
  status_ = ExecutionStatus::kRunning;
  started_at_ = scheduler_.now();
  journal(RecordType::kStarted, json::Object{{"tNs", now_ns()}});
  emit(StatusEvent::Type::kStarted, def_.initial_state);
  enter_state(def_.initial_state);
}

void StrategyExecution::abort(const std::string& reason) {
  if (status_ != ExecutionStatus::kRunning &&
      status_ != ExecutionStatus::kPending) {
    return;
  }
  ++generation_;  // invalidate all pending timers
  if (!history_.empty() && history_.back().exited == runtime::Time{0}) {
    history_.back().exited = scheduler_.now();
  }
  finished_at_ = scheduler_.now();
  status_ = ExecutionStatus::kAborted;
  journal(RecordType::kAborted,
          json::Object{{"state", current_state_},
                       {"reason", reason},
                       {"tNs", now_ns()}});
  // Emit after the status flip so listeners observe the final state.
  emit(StatusEvent::Type::kAborted, current_state_, "", 0.0, reason);
}

void StrategyExecution::enter_state(const std::string& name) {
  const core::StateDef* state = def_.find_state(name);
  if (state == nullptr) {  // unreachable after validation
    emit(StatusEvent::Type::kError, name, "", 0.0, "state not found");
    finish(ExecutionStatus::kFailed);
    return;
  }
  ++generation_;
  const std::uint64_t gen = generation_;
  current_state_ = name;
  state_ = state;
  dwell_elapsed_ = state->min_duration <= runtime::Duration::zero();
  history_.push_back(StateVisit{name, scheduler_.now(), runtime::Time{0}, 0.0,
                                false});
  journal(RecordType::kStateEntered,
          json::Object{{"state", name}, {"tNs", now_ns()}});
  emit(StatusEvent::Type::kStateEntered, name);

  if (!apply_routing(*state)) return;  // diverted into the rollback path

  if (state->is_final()) {
    history_.back().exited = scheduler_.now();
    finish(state->final_kind == core::FinalKind::kSuccess
               ? ExecutionStatus::kSucceeded
               : ExecutionStatus::kRolledBack);
    return;
  }

  checks_.clear();
  checks_.reserve(state->checks.size());
  for (const core::CheckDef& check : state->checks) {
    checks_.push_back(CheckRuntime{&check, 0, 0, false});
  }
  for (std::size_t i = 0; i < checks_.size(); ++i) schedule_check(i);

  if (!dwell_elapsed_) {
    arm_at(scheduler_.now() + state->min_duration, [this, gen] {
      if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
      dwell_elapsed_ = true;
      maybe_complete_state();
    });
  }
  // A state with no checks and no dwell completes immediately (but via
  // the scheduler so re-entrant transitions unwind).
  if (checks_.empty() && dwell_elapsed_) {
    arm_at(scheduler_.now(), [this, gen] {
      if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
      maybe_complete_state();
    });
  }
}

bool StrategyExecution::apply_routing(const core::StateDef& state) {
  for (std::size_t i = 0; i < state.routing.size(); ++i) {
    if (apply_one_routing(state, i, std::nullopt, false) ==
        ApplyOutcome::kDiverted) {
      return false;
    }
  }
  return true;
}

StrategyExecution::ApplyOutcome StrategyExecution::apply_one_routing(
    const core::StateDef& state, std::size_t index,
    std::optional<std::uint64_t> forced_epoch, bool intent_already_journaled,
    const std::map<std::string, bool>* region_acks) {
  const core::ServiceRouting& routing = state.routing[index];
  const core::ServiceDef* service = def_.find_service(routing.service);
  if (service == nullptr) return ApplyOutcome::kContinue;  // validated earlier
  auto config = build_proxy_config(*service, routing);
  if (!config.ok()) {
    emit(StatusEvent::Type::kError, state.name, "", 0.0,
         config.error_message());
    return ApplyOutcome::kContinue;
  }
  std::uint64_t epoch = 0;
  if (forced_epoch.has_value()) {
    epoch = *forced_epoch;
  } else if (options_.epoch_allocator) {
    epoch = options_.epoch_allocator(routing.service);
  }
  config.value().epoch = epoch;
  if (!intent_already_journaled) {
    json::Object intent{{"service", routing.service},
                        {"routingIndex", index},
                        {"epoch", static_cast<std::int64_t>(epoch)},
                        {"state", state.name},
                        {"config", config.value().to_json()},
                        {"tNs", now_ns()}};
    if (!routing.regions.empty()) {
      // Region scope travels with the intent: reconcile must converge
      // only the regions this push targeted, never the whole fleet.
      json::Array scope;
      for (const std::string& region : routing.regions) {
        scope.push_back(region);
      }
      intent["regions"] = std::move(scope);
    }
    journal(RecordType::kApplyIntent, std::move(intent));
  }
  if (service->federated()) {
    return apply_fleet_routing(state, index, *service, config.value(), epoch,
                               region_acks);
  }
  auto applied = proxies_.apply(*service, config.value());
  journal(RecordType::kApplyAck,
          json::Object{{"service", routing.service},
                       {"routingIndex", index},
                       {"epoch", static_cast<std::int64_t>(epoch)},
                       {"ok", applied.ok()},
                       {"error", applied.ok() ? "" : applied.error_message()},
                       {"tNs", now_ns()}});
  if (!applied.ok()) {
    // Routing is the engine's hold on live traffic: a state whose
    // split cannot be installed (past the retry budget of the
    // resilience layer, if configured) must not run its checks
    // against the wrong traffic mix. Divert to the rollback path —
    // unless this state IS a final state, where the execution is
    // ending anyway and the failure is only reported.
    emit(StatusEvent::Type::kError, state.name, routing.service, 0.0,
         "proxy update failed: " + applied.error_message());
    if (!state.is_final()) {
      rollback_or_abort("proxy update for service '" + routing.service +
                        "' failed: " + applied.error_message());
      return ApplyOutcome::kDiverted;
    }
    return ApplyOutcome::kContinue;
  }
  emit(StatusEvent::Type::kRoutingApplied, state.name, routing.service);
  return ApplyOutcome::kContinue;
}

StrategyExecution::ApplyOutcome StrategyExecution::apply_fleet_routing(
    const core::StateDef& state, std::size_t index,
    const core::ServiceDef& service, const proxy::ProxyConfig& config,
    std::uint64_t epoch, const std::map<std::string, bool>* region_acks) {
  const core::ServiceRouting& routing = state.routing[index];
  Fleet::SkipFn skip;
  if (region_acks != nullptr && !region_acks->empty()) {
    skip = [region_acks](const std::string& region) -> std::optional<bool> {
      const auto it = region_acks->find(region);
      if (it == region_acks->end()) return std::nullopt;
      return it->second;
    };
  }
  // One kRegionAck per fresh region outcome, in canary order: the WAL
  // captures every region boundary a crash can land between, so resume
  // re-pushes exactly the regions whose verdict is missing.
  const Fleet::AckFn on_ack = [&](const Fleet::RegionOutcome& outcome) {
    journal(RecordType::kRegionAck,
            json::Object{{"service", routing.service},
                         {"routingIndex", index},
                         {"region", outcome.region->name},
                         {"epoch", static_cast<std::int64_t>(epoch)},
                         {"ok", outcome.ok},
                         {"error", outcome.error},
                         {"tNs", now_ns()}});
  };
  const Fleet::PushResult result =
      fleet_.push(service, config, routing.regions, skip, on_ack);

  // The final kApplyAck verdict is the quorum test, so the existing
  // !ok -> rollback resume machinery covers sub-quorum pushes too.
  const std::string quorum_error =
      result.quorum_met()
          ? ""
          : "quorum not met: " + std::to_string(result.acked) + "/" +
                std::to_string(result.required) +
                " regions acked (missed: " + result.failed_regions() + ")";
  journal(RecordType::kApplyAck,
          json::Object{{"service", routing.service},
                       {"routingIndex", index},
                       {"epoch", static_cast<std::int64_t>(epoch)},
                       {"ok", result.quorum_met()},
                       {"error", quorum_error},
                       {"tNs", now_ns()}});

  // Degraded-region bookkeeping. Journaled (skipped) verdicts replayed
  // on resume update the set silently — the pre-crash process already
  // announced them; fresh state transitions are announced here.
  std::set<std::string>& degraded = degraded_regions_[routing.service];
  for (const Fleet::RegionOutcome& outcome : result.outcomes) {
    const std::string& region = outcome.region->name;
    if (outcome.ok) {
      const bool was_degraded = degraded.erase(region) > 0;
      if (was_degraded && !outcome.skipped) {
        emit(StatusEvent::Type::kRegionRecovered, state.name, routing.service,
             static_cast<double>(epoch),
             "region '" + region + "' accepted epoch " +
                 std::to_string(epoch));
      }
    } else if (result.quorum_met()) {
      const bool newly = degraded.insert(region).second;
      if (newly && !outcome.skipped) {
        emit(StatusEvent::Type::kRegionDegraded, state.name, routing.service,
             static_cast<double>(epoch),
             "region '" + region + "' missed epoch " + std::to_string(epoch) +
                 ": " + outcome.error);
      }
    }
  }

  if (!result.quorum_met()) {
    emit(StatusEvent::Type::kError, state.name, routing.service, 0.0,
         "fleet push failed: " + quorum_error);
    if (!state.is_final()) {
      rollback_or_abort("fleet push for service '" + routing.service +
                        "' " + quorum_error);
      return ApplyOutcome::kDiverted;
    }
    return ApplyOutcome::kContinue;
  }
  emit(StatusEvent::Type::kRoutingApplied, state.name, routing.service,
       static_cast<double>(result.acked),
       result.failed_regions().empty()
           ? ""
           : "degraded regions: " + result.failed_regions());
  return ApplyOutcome::kContinue;
}

void StrategyExecution::rollback_or_abort(const std::string& reason) {
  const core::StateDef* rollback = nullptr;
  for (const core::StateDef& state : def_.states) {
    if (state.final_kind == core::FinalKind::kRollback) {
      rollback = &state;
      break;
    }
  }
  if (rollback == nullptr || rollback->name == current_state_) {
    abort(reason);
    return;
  }
  emit(StatusEvent::Type::kDegraded, current_state_, "", 0.0,
       reason + "; rolling back");
  transition_to(rollback->name, /*via_exception=*/true);
}

void StrategyExecution::schedule_check(std::size_t check_index) {
  // Node-style chained timer: the next execution is armed `interval`
  // after the previous one *completes*, so engine-side processing delay
  // accumulates — the effect measured in the paper's Figures 8/10.
  arm_check_at(check_index,
               scheduler_.now() + checks_[check_index].def->interval);
}

void StrategyExecution::arm_check_at(std::size_t check_index,
                                     runtime::Time deadline) {
  const std::uint64_t gen = generation_;
  arm_at(deadline, [this, gen, check_index] {
    if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
    run_check_execution(check_index);
  });
}

void StrategyExecution::run_check_execution(std::size_t check_index) {
  runtime::Executor* executor = options_.check_executor;
  if (executor != nullptr) {
    // Parallel path: evaluate on the pool, mutate on the scheduler. The
    // job reads only the immutable check definition and the (thread-
    // safe) MetricsClient; everything else happens in the marshalled
    // continuation below, on the scheduler thread, exactly as inline.
    const core::CheckDef* check = checks_[check_index].def;
    const std::uint64_t gen = generation_;
    const bool submitted = executor->submit(
        [this, guard = async_guard_, gen, check_index, check] {
          const std::shared_lock<std::shared_mutex> lock(guard->mutex);
          if (guard->dead) return;
          std::string degraded_detail;
          const bool success = evaluate_check_once(*check, degraded_detail);
          // Marshal the result back onto the owning scheduler through a
          // tracked timer; the guard is held until it is armed, so the
          // destructor can still cancel it.
          arm_at(scheduler_.now(),
                 [this, gen, check_index, success,
                  degraded_detail = std::move(degraded_detail)] {
                   if (gen != generation_ ||
                       status_ != ExecutionStatus::kRunning) {
                     return;
                   }
                   finish_check_execution(check_index, success,
                                          degraded_detail);
                 });
        });
    if (submitted) return;
    // Executor refused (shutting down): fall through to the inline path
    // rather than losing the execution — the drain contract says a
    // refused job never runs.
    util::log_debug("execution", id_,
                    ": check executor refused job, evaluating inline");
  }
  std::string degraded_detail;
  const bool success =
      evaluate_check_once(*checks_[check_index].def, degraded_detail);
  finish_check_execution(check_index, success, degraded_detail);
}

void StrategyExecution::finish_check_execution(
    std::size_t check_index, const bool success,
    const std::string& degraded_detail) {
  CheckRuntime& runtime = checks_[check_index];
  const core::CheckDef& check = *runtime.def;
  ++runtime.executed;
  ++checks_executed_;
  if (success) ++runtime.successes;
  if (!degraded_detail.empty()) {
    // A provider failed past its budget during this execution; the
    // check outcome degrades to whatever the remaining conditions say,
    // but the outage must be visible on the event stream (not only in
    // debug logs) so dashboards and operators can tell "metrics said
    // no" apart from "metrics were unreachable".
    emit(StatusEvent::Type::kDegraded, current_state_, check.name,
         success ? 1.0 : 0.0, degraded_detail);
  }
  emit(StatusEvent::Type::kCheckExecuted, current_state_, check.name,
       success ? 1.0 : 0.0);

  const bool exception_fired =
      check.kind == core::CheckKind::kException && !success;
  if (!exception_fired && runtime.executed >= check.executions) {
    runtime.done = true;
  }
  // The deadline of the follow-up execution is fixed (and journaled)
  // here, after the result events, so virtual time charged by listeners
  // is part of the chained-timer delay exactly as before.
  runtime::Time next_deadline{0};
  if (!exception_fired && !runtime.done) {
    next_deadline = scheduler_.now() + check.interval;
  }
  if (options_.durability != nullptr) {
    json::Object data{{"state", current_state_},
                      {"check", check.name},
                      {"checkIndex", check_index},
                      {"success", success},
                      {"executed", runtime.executed},
                      {"successes", runtime.successes},
                      {"done", runtime.done},
                      {"tNs", now_ns()}};
    if (exception_fired) data["exceptionFallback"] = check.fallback_state;
    if (next_deadline != runtime::Time{0}) {
      data["nextDeadlineNs"] =
          static_cast<std::int64_t>(next_deadline.count());
    }
    journal(RecordType::kCheckExecuted, std::move(data));
  }

  if (exception_fired) {
    // A failing exception check rolls back immediately (paper §3.2).
    emit(StatusEvent::Type::kExceptionTriggered, current_state_, check.name);
    journal(RecordType::kExceptionTriggered,
            json::Object{{"state", current_state_},
                         {"check", check.name},
                         {"fallback", check.fallback_state},
                         {"tNs", now_ns()}});
    transition_to(check.fallback_state, /*via_exception=*/true);
    return;
  }

  if (runtime.done) {
    double contribution;
    if (check.kind == core::CheckKind::kBasic) {
      contribution = core::map_through_thresholds(
          check.thresholds, check.outputs,
          static_cast<double>(runtime.successes));
    } else {
      // All executions of an exception check succeeded: its aggregated
      // outcome equals n (paper §3.2).
      contribution = static_cast<double>(runtime.successes);
    }
    emit(StatusEvent::Type::kCheckCompleted, current_state_, check.name,
         contribution);
    maybe_complete_state();
    return;
  }
  arm_check_at(check_index, next_deadline);
}

bool StrategyExecution::evaluate_check_once(
    const core::CheckDef& check, std::string& degraded_detail) const {
  ClientEvalContext context(metrics_, def_, now_seconds());
  for (const core::MetricCondition& condition : check.conditions) {
    auto value = condition.aggregate == core::RegionAggregate::kNone
                     ? context.query(condition.provider, condition.query)
                     : aggregate_condition(context, condition);
    if (!value.ok()) {
      util::log_debug("execution", id_, ": provider error for '",
                      condition.query, "': ", value.error_message());
      if (!degraded_detail.empty()) degraded_detail += "; ";
      degraded_detail +=
          "provider '" + condition.provider + "': " + value.error_message();
      if (condition.fail_on_no_data) return false;
      continue;
    }
    if (!value.value().has_value()) {
      if (condition.fail_on_no_data) return false;
      continue;
    }
    if (!condition.validator.eval(*value.value())) return false;
  }
  if (check.custom && !check.custom(context)) return false;
  return true;
}

util::Result<std::optional<double>> StrategyExecution::aggregate_condition(
    core::EvalContext& context, const core::MetricCondition& condition) const {
  using R = util::Result<std::optional<double>>;
  const core::ServiceDef* service = def_.find_service(condition.region_service);
  if (service == nullptr || !service->federated()) {  // validated earlier
    return R::error("aggregate over unknown federated service '" +
                    condition.region_service + "'");
  }
  // Canary order, so kDelta's "canary minus the rest" picks the same
  // region the fleet ramps first. Regions without data are skipped —
  // a partitioned region must not veto the fleet-wide check; total
  // silence (or total provider failure) degrades like a normal
  // no-data/provider-error condition.
  const std::vector<const core::RegionDef*> regions =
      service->regions_in_canary_order();
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  std::optional<double> canary_value;
  double rest_sum = 0.0;
  double rest_weight = 0.0;
  std::size_t seen = 0;
  std::string errors;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const core::RegionDef& region = *regions[i];
    std::string query = condition.query;
    static constexpr std::string_view kPlaceholder = "$region";
    for (std::size_t pos = query.find(kPlaceholder);
         pos != std::string::npos; pos = query.find(kPlaceholder, pos)) {
      query.replace(pos, kPlaceholder.size(), region.name);
      pos += region.name.size();
    }
    auto value = context.query(condition.provider, query);
    if (!value.ok()) {
      if (!errors.empty()) errors += "; ";
      errors += "region '" + region.name + "': " + value.error_message();
      continue;
    }
    if (!value.value().has_value()) continue;
    const double v = *value.value();
    if (seen == 0 || v < min_value) min_value = v;
    if (seen == 0 || v > max_value) max_value = v;
    weighted_sum += v * region.weight;
    weight_total += region.weight;
    if (i == 0) {
      canary_value = v;
    } else {
      rest_sum += v * region.weight;
      rest_weight += region.weight;
    }
    ++seen;
  }
  if (seen == 0) {
    if (!errors.empty()) return R::error(errors);
    return R(std::nullopt);
  }
  switch (condition.aggregate) {
    case core::RegionAggregate::kMax:
      return R(std::optional<double>(max_value));
    case core::RegionAggregate::kMin:
      return R(std::optional<double>(min_value));
    case core::RegionAggregate::kMean:
      return R(std::optional<double>(
          weight_total > 0.0 ? weighted_sum / weight_total : 0.0));
    case core::RegionAggregate::kDelta:
      // Needs the canary AND at least one comparison region reporting.
      if (!canary_value.has_value() || rest_weight <= 0.0) {
        return R(std::nullopt);
      }
      return R(std::optional<double>(*canary_value - rest_sum / rest_weight));
    case core::RegionAggregate::kNone:
      break;
  }
  return R(std::nullopt);
}

void StrategyExecution::maybe_complete_state() {
  if (!dwell_elapsed_) return;
  for (const CheckRuntime& check : checks_) {
    if (!check.done) return;
  }
  complete_state();
}

void StrategyExecution::complete_state() {
  std::vector<std::pair<double, double>> contributions;
  contributions.reserve(checks_.size());
  for (const CheckRuntime& runtime : checks_) {
    const core::CheckDef& check = *runtime.def;
    double value;
    if (check.kind == core::CheckKind::kBasic) {
      value = core::map_through_thresholds(
          check.thresholds, check.outputs,
          static_cast<double>(runtime.successes));
    } else {
      value = static_cast<double>(runtime.successes);
    }
    contributions.emplace_back(value, check.weight);
  }
  const double outcome = core::weighted_outcome(contributions);
  history_.back().outcome = outcome;
  emit(StatusEvent::Type::kStateCompleted, current_state_, "", outcome);
  journal(RecordType::kStateCompleted,
          json::Object{{"state", current_state_},
                       {"outcome", outcome},
                       {"tNs", now_ns()}});

  const std::string& next =
      state_->transitions.empty()
          ? current_state_  // unreachable: non-final states have transitions
          : core::next_state_name(*state_, outcome);
  transition_to(next, /*via_exception=*/false);
}

void StrategyExecution::transition_to(const std::string& next,
                                      bool via_exception) {
  history_.back().exited = scheduler_.now();
  history_.back().via_exception = via_exception;
  if (++transitions_ > options_.max_transitions) {
    emit(StatusEvent::Type::kError, current_state_, "", 0.0,
         "transition limit exceeded (loop guard)");
    finish(ExecutionStatus::kFailed);
    return;
  }
  enter_state(next);
}

void StrategyExecution::finish(ExecutionStatus status) {
  ++generation_;
  status_ = status;
  finished_at_ = scheduler_.now();
  journal(RecordType::kFinished,
          json::Object{{"state", current_state_},
                       {"status", execution_status_name(status)},
                       {"tNs", now_ns()}});
  emit(StatusEvent::Type::kFinished, current_state_, "",
       status == ExecutionStatus::kSucceeded ? 1.0 : 0.0,
       status == ExecutionStatus::kSucceeded    ? "success"
       : status == ExecutionStatus::kRolledBack ? "rollback"
                                                : "failed");
}

// ---------------------------------------------------------------------------
// Resume after a restart

void StrategyExecution::resume(ResumeState state) {
  current_state_ = state.current_state;
  started_at_ = state.started_at;
  finished_at_ = state.finished_at;
  history_ = std::move(state.history);
  transitions_ = state.transitions;
  checks_executed_ = state.checks_executed;
  state_ = current_state_.empty() ? nullptr
                                  : def_.find_state(current_state_);

  using Pending = ResumeState::Pending;
  switch (state.pending) {
    case Pending::kStart:
      // Submitted but never started: run the normal start path (which
      // journals kStarted itself).
      status_ = ExecutionStatus::kPending;
      request_start();
      return;
    case Pending::kEnterState:
      status_ = ExecutionStatus::kRunning;
      arm_at(scheduler_.now(),
             [this, target = state.target] { enter_state(target); });
      return;
    case Pending::kTransition:
      status_ = ExecutionStatus::kRunning;
      arm_at(scheduler_.now(), [this, target = state.target] {
        transition_to(target, /*via_exception=*/false);
      });
      return;
    case Pending::kException:
      status_ = ExecutionStatus::kRunning;
      arm_at(scheduler_.now(), [this, target = state.target,
                                check = state.pending_check,
                                journaled = state.exception_journaled] {
        if (!journaled) {
          emit(StatusEvent::Type::kExceptionTriggered, current_state_, check);
          journal(RecordType::kExceptionTriggered,
                  json::Object{{"state", current_state_},
                               {"check", check},
                               {"fallback", target},
                               {"tNs", now_ns()}});
        }
        transition_to(target, /*via_exception=*/true);
      });
      return;
    case Pending::kRollback:
      status_ = ExecutionStatus::kRunning;
      arm_at(scheduler_.now(), [this, reason = state.pending_reason] {
        rollback_or_abort(reason);
      });
      return;
    case Pending::kNone:
      status_ = ExecutionStatus::kRunning;
      arm_at(scheduler_.now(), [this, rs = std::move(state)] {
        resume_in_state(rs);
      });
      return;
  }
}

void StrategyExecution::resume_in_state(const ResumeState& rs) {
  if (state_ == nullptr) {  // unreachable: replay validated the journal
    emit(StatusEvent::Type::kError, current_state_, "", 0.0,
         "resume: state not found");
    finish(ExecutionStatus::kFailed);
    return;
  }
  const core::StateDef& state = *state_;
  ++generation_;
  const std::uint64_t gen = generation_;

  // 1. Finish the routing application of the current visit: entries
  // whose ack is journaled already reached (or deliberately skipped)
  // the proxy; an intent without ack is re-issued with its journaled
  // epoch (the proxy dedupes); entries past the crash point run fresh.
  for (std::size_t i = 0; i < state.routing.size(); ++i) {
    const ResumeState::ApplyProgress progress =
        i < rs.applies.size() ? rs.applies[i] : ResumeState::ApplyProgress{};
    if (progress.acked) {
      if (!progress.ok && !state.is_final()) {
        rollback_or_abort("proxy update for service '" +
                          state.routing[i].service +
                          "' failed before restart");
        return;
      }
      // A quorate fleet push that left regions behind re-establishes
      // the degraded set (the restarted process starts empty).
      for (const auto& [region, ok] : progress.region_acks) {
        if (!ok) degraded_regions_[state.routing[i].service].insert(region);
      }
      continue;
    }
    const std::optional<std::uint64_t> epoch =
        progress.intent_journaled ? std::optional<std::uint64_t>(progress.epoch)
                                  : std::nullopt;
    if (apply_one_routing(state, i, epoch, progress.intent_journaled,
                          &progress.region_acks) == ApplyOutcome::kDiverted) {
      return;
    }
  }

  if (state.is_final()) {
    history_.back().exited = scheduler_.now();
    finish(state.final_kind == core::FinalKind::kSuccess
               ? ExecutionStatus::kSucceeded
               : ExecutionStatus::kRolledBack);
    return;
  }

  // 2. Rebuild check aggregates and re-arm their timers at the
  // journaled absolute deadlines. A check that never executed this
  // visit is due `interval` after state entry — in a live run the
  // original timer was armed after the routing pushes, so this resumes
  // it no later (and in the zero-cost simulation, exactly) on time.
  //
  // Arming ORDER matters for exact replay: schedulers break same-time
  // ties by insertion order, and the original timers were inserted when
  // they were (re-)armed — at `deadline - interval` — checks before the
  // dwell timer at state entry. Re-arming in that order makes a resumed
  // deterministic run fire same-instant timers exactly like the
  // uninterrupted one would have.
  const runtime::Time entered = history_.back().entered;
  checks_.clear();
  checks_.reserve(state.checks.size());
  struct PendingArm {
    runtime::Time armed;     ///< when the original timer was inserted
    int rank;                ///< at equal times: checks (0) before dwell (1)
    std::size_t index;       ///< check index (stable tiebreak)
    runtime::Time deadline;
  };
  std::vector<PendingArm> arms;
  for (std::size_t i = 0; i < state.checks.size(); ++i) {
    const ResumeState::CheckProgress progress =
        i < rs.checks.size() ? rs.checks[i] : ResumeState::CheckProgress{};
    checks_.push_back(CheckRuntime{&state.checks[i], progress.executed,
                                   progress.successes, progress.done});
    if (progress.done) continue;
    const runtime::Time deadline =
        progress.next_deadline != runtime::Time{0}
            ? progress.next_deadline
            : entered + state.checks[i].interval;
    arms.push_back(PendingArm{deadline - state.checks[i].interval, 0, i,
                              deadline});
  }

  // 3. Dwell: re-arm against the absolute entry time.
  const runtime::Time dwell_deadline = entered + state.min_duration;
  dwell_elapsed_ = dwell_deadline <= scheduler_.now();
  if (!dwell_elapsed_) {
    arms.push_back(PendingArm{entered, 1, 0, dwell_deadline});
  }

  std::stable_sort(arms.begin(), arms.end(),
                   [](const PendingArm& a, const PendingArm& b) {
                     if (a.armed != b.armed) return a.armed < b.armed;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.index < b.index;
                   });
  for (const PendingArm& arm : arms) {
    if (arm.rank == 0) {
      arm_check_at(arm.index, arm.deadline);
    } else {
      arm_at(arm.deadline, [this, gen] {
        if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
        dwell_elapsed_ = true;
        maybe_complete_state();
      });
    }
  }

  // 4. Completion sweep: covers "all checks finished before the crash
  // but the state-completed record was never written" and empty states.
  arm_at(scheduler_.now(), [this, gen] {
    if (gen != generation_ || status_ != ExecutionStatus::kRunning) return;
    maybe_complete_state();
  });
}

runtime::Duration StrategyExecution::enactment_delay() const {
  // Nominal time = sum of specified durations of the transient states
  // actually visited (a check's first execution waits one interval, but
  // interval * executions already accounts for that).
  runtime::Duration specified{0};
  for (const StateVisit& visit : history_) {
    const core::StateDef* state = def_.find_state(visit.state);
    if (state != nullptr && !state->is_final()) {
      specified += state->duration();
    }
  }
  const runtime::Duration actual = finished_at_ - started_at_;
  return actual - specified;
}

}  // namespace bifrost::engine
