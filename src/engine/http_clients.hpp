// Production implementations of the engine-side interfaces, speaking
// HTTP to the metrics provider (Prometheus stand-in) and to the Bifrost
// proxies' admin APIs.
#pragma once

#include "engine/interfaces.hpp"
#include "http/client.hpp"

namespace bifrost::engine {

/// Queries GET /api/v1/query?query=... on the provider endpoint.
class HttpMetricsClient final : public MetricsClient {
 public:
  HttpMetricsClient() = default;

  util::Result<std::optional<double>> query(
      const core::ProviderConfig& provider, const std::string& query) override;

 private:
  http::HttpClient client_;
};

/// Pushes routing tables via PUT /admin/config on each proxy; reads
/// them (plus the persisted config epoch) back via GET /admin/config
/// for crash-recovery reconciliation.
class HttpProxyController final : public ProxyController {
 public:
  HttpProxyController() = default;

  util::Result<void> apply(const core::ServiceDef& service,
                           const proxy::ProxyConfig& config) override;
  util::Result<ProxyStateView> fetch(const core::ServiceDef& service) override;

 private:
  http::HttpClient client_;
};

}  // namespace bifrost::engine
