// Bridges proxy-side overload/health events into the engine's status
// event stream. Each Bifrost proxy keeps a bounded ring of
// backend_ejected / backend_recovered / load_shed occurrences served on
// GET /admin/events?since=N; the pump polls every watched service's
// admin endpoint with a per-service cursor and forwards fresh events to
// a StatusListener (typically Engine::event_logger()), so ejections and
// sheds show up in the CLI stream and on the dashboard next to the
// strategy's own transitions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "engine/interfaces.hpp"
#include "http/client.hpp"

namespace bifrost::engine {

class ProxyEventPump {
 public:
  struct Options {
    std::chrono::milliseconds poll_interval{500};
  };

  ProxyEventPump(StatusListener listener, Options options);
  explicit ProxyEventPump(StatusListener listener)
      : ProxyEventPump(std::move(listener), Options{}) {}
  ~ProxyEventPump();

  ProxyEventPump(const ProxyEventPump&) = delete;
  ProxyEventPump& operator=(const ProxyEventPump&) = delete;

  /// Registers a service's proxy admin endpoint — and, for a federated
  /// service, one entry per declared region (each region fronts its own
  /// proxy with its own event ring). Endpoints without a host/port are
  /// ignored. Safe to call while the pump runs; re-registering updates
  /// the endpoint but keeps the event cursor. Cursors are keyed per
  /// (service, region): two regions of the same service never share a
  /// cursor, so one region's ring overflowing cannot corrupt another's
  /// events_lost accounting.
  void watch(const core::ServiceDef& service);

  /// One synchronous sweep over all watched proxies; returns how many
  /// events were forwarded. Unreachable proxies are skipped (their
  /// cursor is untouched, so nothing is lost) — the pump is an observer
  /// and must never fail a strategy. Tests call this directly for
  /// deterministic draining.
  std::size_t poll_once();

  /// Background polling at Options::poll_interval.
  void start();
  void stop();

  [[nodiscard]] std::uint64_t events_forwarded() const;

 private:
  struct Watched {
    std::string service;
    std::string region;  ///< empty for the service-level (unfederated) proxy
    std::string host;
    std::uint16_t port = 0;
    std::uint64_t cursor = 0;  ///< highest proxy event sequence seen
  };

  std::size_t drain(Watched& watched);
  void pump_loop();

  StatusListener listener_;
  Options options_;
  http::HttpClient client_;

  mutable std::mutex mutex_;  ///< guards watched_ and forwarded_
  std::vector<Watched> watched_;
  std::uint64_t forwarded_ = 0;

  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace bifrost::engine
