#include "engine/server.hpp"

#include <chrono>

#include "dsl/dsl.hpp"
#include "engine/dashboard_html.hpp"
#include "http/router.hpp"
#include "util/strings.hpp"

namespace bifrost::engine {
namespace {

const char* status_name(ExecutionStatus status) {
  switch (status) {
    case ExecutionStatus::kPending:
      return "pending";
    case ExecutionStatus::kRunning:
      return "running";
    case ExecutionStatus::kSucceeded:
      return "succeeded";
    case ExecutionStatus::kRolledBack:
      return "rolled_back";
    case ExecutionStatus::kAborted:
      return "aborted";
    case ExecutionStatus::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace

json::Value snapshot_to_json(const StrategySnapshot& snapshot) {
  json::Array history;
  for (const StateVisit& visit : snapshot.history) {
    history.push_back(json::Object{
        {"state", visit.state},
        {"entered", std::chrono::duration<double>(visit.entered).count()},
        {"exited", std::chrono::duration<double>(visit.exited).count()},
        {"outcome", visit.outcome},
    });
  }
  return json::Object{
      {"id", snapshot.id},
      {"name", snapshot.name},
      {"status", status_name(snapshot.status)},
      {"currentState", snapshot.current_state},
      {"started", snapshot.started_seconds},
      {"finished", snapshot.finished_seconds},
      {"transitions", snapshot.transitions},
      {"checksExecuted", snapshot.checks_executed},
      {"enactmentDelaySeconds", snapshot.enactment_delay_seconds},
      {"history", std::move(history)},
  };
}

json::Value event_to_json(const StatusEvent& event) {
  return json::Object{
      {"seq", event.sequence}, {"time", event.time_seconds},
      {"strategy", event.strategy_id}, {"type", event.type_name()},
      {"state", event.state},  {"check", event.check},
      {"value", event.value},  {"detail", event.detail},
  };
}

EngineServer::EngineServer(Engine& engine, std::uint16_t port)
    : engine_(engine) {
  http::HttpServer::Options options;
  options.port = port;
  options.worker_threads = 8;
  // Long-poll handlers block; give them room beyond the default timeout.
  options.io_timeout = std::chrono::milliseconds(60000);
  server_ = std::make_unique<http::HttpServer>(
      options, [this](const http::Request& req) { return handle(req); });
}

EngineServer::~EngineServer() { stop(); }

void EngineServer::start() { server_->start(); }
void EngineServer::stop() { server_->stop(); }
std::uint16_t EngineServer::port() const { return server_->port(); }

http::Response EngineServer::handle(const http::Request& request) {
  const std::string path = request.path();
  const std::vector<std::string> segments = http::split_path(path);

  if (path == "/healthz") return http::Response::text(200, "ok\n");

  // Readiness is distinct from liveness: a recovering engine answers
  // /healthz (the process is up) but refuses /readyz until journal
  // replay and proxy reconciliation are complete, so load balancers
  // don't route work to an engine whose proxies may still be stale.
  if (path == "/readyz") {
    return engine_.ready() ? http::Response::text(200, "ready\n")
                           : http::Response::text(503, "recovering\n");
  }

  if (path == "/" && request.method == "GET") {
    http::Response page;
    page.headers.set("Content-Type", "text/html; charset=utf-8");
    page.body = kDashboardHtml;
    return page;
  }

  if (path == "/metrics" && request.method == "GET") {
    // Engine self-instrumentation in the exposition format, so the
    // metrics provider can scrape the engine like any other component.
    std::size_t running = 0;
    std::size_t finished = 0;
    std::uint64_t checks = 0;
    std::uint64_t transitions = 0;
    for (const StrategySnapshot& snapshot : engine_.list()) {
      if (snapshot.status == ExecutionStatus::kRunning ||
          snapshot.status == ExecutionStatus::kPending) {
        ++running;
      } else {
        ++finished;
      }
      checks += snapshot.checks_executed;
      transitions += snapshot.transitions;
    }
    std::string body;
    body += "bifrost_engine_strategies_running " +
            std::to_string(running) + "\n";
    body += "bifrost_engine_strategies_finished " +
            std::to_string(finished) + "\n";
    body += "bifrost_engine_checks_executed_total " +
            std::to_string(checks) + "\n";
    body += "bifrost_engine_transitions_total " +
            std::to_string(transitions) + "\n";
    body += "bifrost_engine_events_total " +
            std::to_string(engine_.last_event_sequence()) + "\n";
    return http::Response::text(200, body);
  }

  if (path == "/strategies" && request.method == "POST") {
    auto def = dsl::compile(request.body);
    if (!def.ok()) {
      return http::Response::json(
          400, json::Value(json::Object{{"error", def.error_message()}})
                   .dump());
    }
    if (request.query_param("dryRun").value_or("0") == "1") {
      const core::StrategyDef& strategy = def.value();
      return http::Response::json(
          200,
          json::Value(json::Object{
              {"status", "valid"},
              {"name", strategy.name},
              {"states", strategy.states.size()},
              {"services", strategy.services.size()},
              {"expectedDurationSeconds",
               std::chrono::duration<double>(strategy.expected_duration())
                   .count()}})
              .dump());
    }
    auto id = engine_.submit(std::move(def).value());
    if (!id.ok()) {
      return http::Response::json(
          422, json::Value(json::Object{{"error", id.error_message()}})
                   .dump());
    }
    return http::Response::json(
        201, json::Value(json::Object{{"id", id.value()}}).dump());
  }

  if (path == "/strategies" && request.method == "GET") {
    json::Array list;
    for (const StrategySnapshot& snapshot : engine_.list()) {
      list.push_back(snapshot_to_json(snapshot));
    }
    return http::Response::json(200, json::Value(std::move(list)).dump());
  }

  if (segments.size() >= 2 && segments[0] == "strategies") {
    const std::string& id = segments[1];
    if (segments.size() == 2 && request.method == "GET") {
      const auto snapshot = engine_.status(id);
      if (!snapshot) return http::Response::not_found();
      return http::Response::json(200, snapshot_to_json(*snapshot).dump());
    }
    if (segments.size() == 3 && segments[2] == "dot" &&
        request.method == "GET") {
      const auto dot = engine_.dot(id);
      if (!dot) return http::Response::not_found();
      return http::Response::text(200, *dot);
    }
    if (segments.size() == 2 && request.method == "DELETE") {
      if (!engine_.abort(id)) return http::Response::not_found();
      return http::Response::json(200, R"({"status":"aborting"})");
    }
  }

  if (path == "/events" && request.method == "GET") {
    std::uint64_t since = 0;
    if (const auto s = request.query_param("since"); s) {
      since = static_cast<std::uint64_t>(
          util::parse_int(*s).value_or(0));
    }
    std::chrono::milliseconds wait{0};
    if (const auto w = request.query_param("wait"); w) {
      wait = std::chrono::milliseconds(util::parse_int(*w).value_or(0));
    }
    wait = std::min(wait, std::chrono::milliseconds(30000));
    const std::string strategy_filter =
        request.query_param("strategy").value_or("");
    json::Array events;
    for (const StatusEvent& event :
         engine_.events_since(since, 1000, wait)) {
      if (!strategy_filter.empty() && event.strategy_id != strategy_filter) {
        continue;
      }
      events.push_back(event_to_json(event));
    }
    return http::Response::json(200, json::Value(std::move(events)).dump());
  }

  return http::Response::not_found();
}

}  // namespace bifrost::engine
