#include "engine/interfaces.hpp"

namespace bifrost::engine {

std::string StatusEvent::type_name() const {
  switch (type) {
    case Type::kStarted:
      return "started";
    case Type::kStateEntered:
      return "state_entered";
    case Type::kRoutingApplied:
      return "routing_applied";
    case Type::kCheckExecuted:
      return "check_executed";
    case Type::kCheckCompleted:
      return "check_completed";
    case Type::kExceptionTriggered:
      return "exception_triggered";
    case Type::kStateCompleted:
      return "state_completed";
    case Type::kFinished:
      return "finished";
    case Type::kAborted:
      return "aborted";
    case Type::kError:
      return "error";
    case Type::kRetried:
      return "retried";
    case Type::kCircuitOpened:
      return "circuit_opened";
    case Type::kCircuitClosed:
      return "circuit_closed";
    case Type::kDegraded:
      return "degraded";
    case Type::kRecovered:
      return "recovered";
    case Type::kReconciled:
      return "reconciled";
    case Type::kBackendEjected:
      return "backend_ejected";
    case Type::kBackendRecovered:
      return "backend_recovered";
    case Type::kLoadShed:
      return "load_shed";
    case Type::kEventsLost:
      return "events_lost";
    case Type::kRegionDegraded:
      return "region_degraded";
    case Type::kRegionRecovered:
      return "region_recovered";
    case Type::kRegionResynced:
      return "region_resynced";
  }
  return "?";
}

util::Result<proxy::ProxyConfig> build_proxy_config(
    const core::ServiceDef& service, const core::ServiceRouting& routing) {
  using R = util::Result<proxy::ProxyConfig>;
  proxy::ProxyConfig config;
  config.service = service.name;
  config.mode = routing.mode;
  config.sticky = routing.sticky;
  if (routing.filter.active()) {
    config.filter_header = routing.filter.header;
    config.filter_value = routing.filter.value;
    config.default_version = routing.filter.default_version;
  }
  for (const core::VersionSplit& split : routing.splits) {
    const core::VersionDef* version = service.find_version(split.version);
    if (version == nullptr) {
      return R::error("service '" + service.name + "' has no version '" +
                      split.version + "'");
    }
    proxy::BackendTarget backend;
    backend.version = split.version;
    backend.host = version->host;
    backend.port = version->port;
    backend.percent = split.percent;
    backend.match_header = split.match_header;
    backend.match_value = split.match_value;
    // Per-version overload overrides travel from the static service
    // config into every routing table the engine pushes.
    backend.timeout_ms = version->timeout_ms;
    backend.max_concurrency = version->max_concurrency;
    config.backends.push_back(std::move(backend));
  }
  config.overload = service.overload;
  for (const core::ShadowRule& shadow : routing.shadows) {
    const core::VersionDef* target =
        service.find_version(shadow.target_version);
    if (target == nullptr) {
      return R::error("service '" + service.name + "' has no version '" +
                      shadow.target_version + "'");
    }
    config.shadows.push_back(proxy::ShadowTarget{shadow.source_version,
                                                 shadow.target_version,
                                                 target->host, target->port,
                                                 shadow.percent});
  }
  if (auto v = config.validate(); !v) return R::error(v.error_message());
  return config;
}

proxy::ProxyConfig passthrough_config(const core::ServiceDef& service,
                                      const std::string& version) {
  proxy::ProxyConfig config;
  config.service = service.name;
  config.overload = service.overload;
  const core::VersionDef* v = service.find_version(version);
  if (v != nullptr) {
    proxy::BackendTarget backend;
    backend.version = v->version;
    backend.host = v->host;
    backend.port = v->port;
    backend.percent = 100.0;
    backend.timeout_ms = v->timeout_ms;
    backend.max_concurrency = v->max_concurrency;
    config.backends.push_back(std::move(backend));
  }
  return config;
}

}  // namespace bifrost::engine
