#include "engine/interfaces.hpp"

namespace bifrost::engine {

std::string StatusEvent::type_name() const {
  switch (type) {
    case Type::kStarted:
      return "started";
    case Type::kStateEntered:
      return "state_entered";
    case Type::kRoutingApplied:
      return "routing_applied";
    case Type::kCheckExecuted:
      return "check_executed";
    case Type::kCheckCompleted:
      return "check_completed";
    case Type::kExceptionTriggered:
      return "exception_triggered";
    case Type::kStateCompleted:
      return "state_completed";
    case Type::kFinished:
      return "finished";
    case Type::kAborted:
      return "aborted";
    case Type::kError:
      return "error";
    case Type::kRetried:
      return "retried";
    case Type::kCircuitOpened:
      return "circuit_opened";
    case Type::kCircuitClosed:
      return "circuit_closed";
    case Type::kDegraded:
      return "degraded";
    case Type::kRecovered:
      return "recovered";
    case Type::kReconciled:
      return "reconciled";
  }
  return "?";
}

util::Result<proxy::ProxyConfig> build_proxy_config(
    const core::ServiceDef& service, const core::ServiceRouting& routing) {
  using R = util::Result<proxy::ProxyConfig>;
  proxy::ProxyConfig config;
  config.service = service.name;
  config.mode = routing.mode;
  config.sticky = routing.sticky;
  if (routing.filter.active()) {
    config.filter_header = routing.filter.header;
    config.filter_value = routing.filter.value;
    config.default_version = routing.filter.default_version;
  }
  for (const core::VersionSplit& split : routing.splits) {
    const core::VersionDef* version = service.find_version(split.version);
    if (version == nullptr) {
      return R::error("service '" + service.name + "' has no version '" +
                      split.version + "'");
    }
    config.backends.push_back(proxy::BackendTarget{
        split.version, version->host, version->port, split.percent,
        split.match_header, split.match_value});
  }
  for (const core::ShadowRule& shadow : routing.shadows) {
    const core::VersionDef* target = service.find_version(shadow.target_version);
    if (target == nullptr) {
      return R::error("service '" + service.name + "' has no version '" +
                      shadow.target_version + "'");
    }
    config.shadows.push_back(proxy::ShadowTarget{shadow.source_version,
                                                 shadow.target_version,
                                                 target->host, target->port,
                                                 shadow.percent});
  }
  if (auto v = config.validate(); !v) return R::error(v.error_message());
  return config;
}

proxy::ProxyConfig passthrough_config(const core::ServiceDef& service,
                                      const std::string& version) {
  proxy::ProxyConfig config;
  config.service = service.name;
  const core::VersionDef* v = service.find_version(version);
  if (v != nullptr) {
    config.backends.push_back(
        proxy::BackendTarget{v->version, v->host, v->port, 100.0, "", ""});
  }
  return config;
}

}  // namespace bifrost::engine
