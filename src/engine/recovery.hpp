// Journal replay: turns the record stream written by StrategyExecution
// (through the Engine's DurabilitySink) back into per-strategy
// ResumeState, so a restarted engine continues every live execution
// exactly where its last record left off.
//
// The tracker is used in two places:
//  - recovery: Engine::recover() replays a freshly read journal through
//    a tracker, then materializes executions from the result;
//  - live: the Engine feeds every record it appends through its own
//    tracker, which lets it periodically write compacted kSnapshot
//    records (tracker state serialized to JSON) — replay then restarts
//    from the last snapshot instead of record zero, keeping recovery
//    O(recent) regardless of journal age.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/execution.hpp"
#include "engine/journal.hpp"
#include "proxy/config.hpp"
#include "util/result.hpp"

namespace bifrost::engine {

class StateTracker {
 public:
  struct Strategy {
    core::StrategyDef def;
    std::string name;
    bool terminal = false;  ///< finished or aborted; nothing to resume
    ResumeState resume;
  };

  /// The newest journaled apply intent per service — what the engine
  /// believes the proxy should be enacting. Reconciliation diffs this
  /// against the proxy's actual state.
  struct Intent {
    std::uint64_t epoch = 0;
    proxy::ProxyConfig config;
    std::string strategy_id;
    /// Region scope journaled with the intent (federated services
    /// only): the regions the push targeted. Empty = fleet-wide.
    std::vector<std::string> regions;
  };

  /// Applies one record. kSnapshot resets the tracker to the snapshot's
  /// state; kRecovered/kReconciled markers are ignored.
  util::Result<void> apply(const JournalRecord& record);

  /// Replays a full record sequence (a freshly read journal). Fast
  /// path: scans for the last kSnapshot and replays from there.
  util::Result<void> replay(const std::vector<JournalRecord>& records);

  [[nodiscard]] const std::map<std::string, Strategy>& strategies() const {
    return strategies_;
  }
  /// Highest journaled config epoch per service (allocation floor).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& epochs() const {
    return epochs_;
  }
  [[nodiscard]] const std::map<std::string, Intent>& intents() const {
    return intents_;
  }
  /// Last fleet-wide (unscoped) intent per service. For a federated
  /// service this is the fleet epoch floor every region must reach;
  /// scoped intents in region_intents() override it for the regions
  /// they name (a canary-scoped push must NOT be converged fleet-wide).
  [[nodiscard]] const std::map<std::string, Intent>& fleet_intents() const {
    return fleet_intents_;
  }
  /// Last region-scoped intent per "service/region" key.
  [[nodiscard]] const std::map<std::string, Intent>& region_intents() const {
    return region_intents_;
  }
  /// Next free numeric suffix for "s-N" strategy ids.
  [[nodiscard]] std::uint64_t next_numeric_id() const { return next_id_; }
  [[nodiscard]] std::uint64_t records_seen() const { return records_seen_; }

  /// Snapshot round-trip (the payload of kSnapshot records).
  [[nodiscard]] json::Value to_snapshot() const;
  util::Result<void> load_snapshot(const json::Value& snapshot);

 private:
  util::Result<void> apply_impl(const JournalRecord& record);

  std::map<std::string, Strategy> strategies_;
  std::map<std::string, std::uint64_t> epochs_;
  std::map<std::string, Intent> intents_;
  std::map<std::string, Intent> fleet_intents_;   ///< service -> unscoped
  std::map<std::string, Intent> region_intents_;  ///< "service/region"
  std::uint64_t next_id_ = 1;
  std::uint64_t records_seen_ = 0;
};

}  // namespace bifrost::engine
