// Federation layer between the strategy interpreter and the proxies of
// a multi-region service. A ServiceDef that declares `regions` is
// fronted by N proxies; one logical config push fans out to every
// targeted region in canary order, each region retried independently
// (the ResilientProxyController keys its per-region retry/breaker state
// by "service/region"), and the push as a whole succeeds when at least
// the service's quorum of regions acked it. Regions that missed the
// push are `region_degraded` until a later push or an engine
// reconcile/resync converges them back to the fleet epoch.
//
// Determinism: without an executor the fan-out is sequential in canary
// order. With an executor the per-region applies run as parallel jobs,
// but outcomes are joined and reported strictly in canary order, so
// journaled records and emitted events are identical either way — only
// wall-clock differs. Do NOT pass a simulated executor here: push()
// blocks on the joined futures, which would deadlock a virtual-time
// worker lane (the sim exercises the sequential arm, which is also the
// byte-identical-replay arm).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/interfaces.hpp"
#include "runtime/executor.hpp"

namespace bifrost::engine {

class Fleet {
 public:
  /// Verdict of one region of a fleet push.
  struct RegionOutcome {
    const core::RegionDef* region = nullptr;
    bool ok = false;
    std::string error;
    /// True when the verdict came from the journal (resume) instead of
    /// a fresh apply — on_ack is not called for these.
    bool skipped = false;
  };

  struct PushResult {
    std::vector<RegionOutcome> outcomes;  ///< canary order
    int acked = 0;     ///< regions that accepted the config
    int required = 0;  ///< effective quorum for this push
    [[nodiscard]] bool quorum_met() const { return acked >= required; }
    /// Comma-separated names of regions that missed the push.
    [[nodiscard]] std::string failed_regions() const;
  };

  /// Journaled verdict for a region pushed before a crash: nullopt =
  /// not yet acked (push it), otherwise the acked ok/error verdict.
  using SkipFn = std::function<std::optional<bool>(const std::string& region)>;
  /// Runs after each fresh region outcome is known, in canary order —
  /// the execution journals its kRegionAck record here, so the WAL
  /// captures every region boundary a crash can land between.
  using AckFn = std::function<void(const RegionOutcome&)>;

  explicit Fleet(ProxyController& proxies) : proxies_(proxies) {}

  /// Optional parallel fan-out. Must be a real thread pool (see file
  /// comment); null keeps the sequential deterministic arm.
  void set_executor(runtime::Executor* executor) { executor_ = executor; }

  /// The regions a push scoped to `scope` targets, in canary order.
  /// An empty scope targets the whole fleet.
  [[nodiscard]] static std::vector<const core::RegionDef*> targets(
      const core::ServiceDef& service, const std::vector<std::string>& scope);

  /// Effective quorum of a push covering `targeted` regions: the
  /// service quorum for fleet-wide pushes, every targeted region for
  /// pushes scoped below the quorum (a canary-only push must land).
  [[nodiscard]] static int required_acks(const core::ServiceDef& service,
                                         std::size_t targeted);

  /// Fans `config` out to the targeted regions of `service`.
  PushResult push(const core::ServiceDef& service,
                  const proxy::ProxyConfig& config,
                  const std::vector<std::string>& scope, const SkipFn& skip,
                  const AckFn& on_ack);

 private:
  ProxyController& proxies_;
  runtime::Executor* executor_ = nullptr;
};

}  // namespace bifrost::engine
