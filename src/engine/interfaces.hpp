// Engine-side abstractions. The strategy-enactment logic talks to the
// outside world only through these interfaces, so the identical code
// drives the real middleware (HTTP implementations in http_clients.hpp)
// and the discrete-event simulator used for the paper's engine-scale
// experiments (implementations in src/sim/).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/model.hpp"
#include "proxy/config.hpp"
#include "util/result.hpp"

namespace bifrost::engine {

/// Queries a metrics provider. Returns an error when the provider is
/// unreachable; a nullopt value when the query matched no series.
class MetricsClient {
 public:
  virtual ~MetricsClient() = default;
  virtual util::Result<std::optional<double>> query(
      const core::ProviderConfig& provider, const std::string& query) = 0;
};

/// What a proxy reports about its currently installed configuration —
/// the view the engine's recovery reconciles against its journaled
/// apply intents.
struct ProxyStateView {
  std::uint64_t epoch = 0;     ///< config epoch the proxy last persisted
  proxy::ProxyConfig config;   ///< the routing table it is enacting
};

/// Pushes a routing table to a service's Bifrost proxy.
class ProxyController {
 public:
  virtual ~ProxyController() = default;
  virtual util::Result<void> apply(const core::ServiceDef& service,
                                   const proxy::ProxyConfig& config) = 0;

  /// Reads back the proxy's installed config + epoch (for recovery
  /// reconciliation). Controllers that cannot read back report an
  /// error; reconciliation then re-applies unconditionally.
  virtual util::Result<ProxyStateView> fetch(const core::ServiceDef& service) {
    (void)service;
    return util::Result<ProxyStateView>::error("fetch not supported");
  }

  /// Federation: push to / read back from ONE region's proxy of a
  /// federated service. Controllers unaware of regions fall back to the
  /// single-proxy calls, so the fleet layer degrades to the classic
  /// behavior against them.
  virtual util::Result<void> apply_region(const core::ServiceDef& service,
                                          const core::RegionDef& region,
                                          const proxy::ProxyConfig& config) {
    (void)region;
    return apply(service, config);
  }
  virtual util::Result<ProxyStateView> fetch_region(
      const core::ServiceDef& service, const core::RegionDef& region) {
    (void)region;
    return fetch(service);
  }
};

/// Execution status events (fed to the dashboard/CLI event stream).
struct StatusEvent {
  enum class Type {
    kStarted,
    kStateEntered,
    kRoutingApplied,
    kCheckExecuted,
    kCheckCompleted,
    kExceptionTriggered,
    kStateCompleted,
    kFinished,
    kAborted,
    kError,
    kRetried,        ///< one failed attempt against a provider/proxy retried
    kCircuitOpened,  ///< a target's circuit breaker tripped open
    kCircuitClosed,  ///< a target's circuit breaker recovered (closed)
    kDegraded,       ///< running degraded: a dependency failed past its budget
    kRecovered,      ///< execution resumed from the journal after a restart
    kReconciled,     ///< proxy state reconciled against the journaled intent
    kBackendEjected,    ///< proxy ejected a sick backend version
    kBackendRecovered,  ///< ejected version passed its probe, re-admitted
    kLoadShed,          ///< proxy shed shadow traffic under load
    kEventsLost,        ///< proxy event ring overflowed a lagging reader
    kRegionDegraded,    ///< a fleet push missed this region (>= quorum held)
    kRegionRecovered,   ///< a degraded region accepted a push again
    kRegionResynced,    ///< reconcile converged a lagging region to the fleet
  };

  std::uint64_t sequence = 0;  ///< assigned by the engine event log
  double time_seconds = 0.0;
  std::string strategy_id;
  Type type = Type::kStarted;
  std::string state;
  std::string check;
  double value = 0.0;  ///< check result / state outcome, by type
  std::string detail;

  [[nodiscard]] std::string type_name() const;
};

using StatusListener = std::function<void(const StatusEvent&)>;

/// Materializes the proxy routing table for one service in one state:
/// resolves version names of the state's dynamic routing configuration
/// against the service's static endpoint configuration.
util::Result<proxy::ProxyConfig> build_proxy_config(
    const core::ServiceDef& service, const core::ServiceRouting& routing);

/// The default table outside any live test: 100% of traffic to the given
/// version.
proxy::ProxyConfig passthrough_config(const core::ServiceDef& service,
                                      const std::string& version);

}  // namespace bifrost::engine
