// Enactment of a single strategy: the engine-side interpreter of the
// formal model's automaton. Single-threaded: all methods and timer
// callbacks run on the owning Scheduler's thread (run-to-completion, as
// in the paper's Node.js engine).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/interfaces.hpp"
#include "runtime/scheduler.hpp"

namespace bifrost::engine {

/// Per-state timing of one visit (used to compute enactment delay, the
/// metric of the paper's Figures 8 and 10).
struct StateVisit {
  std::string state;
  runtime::Time entered{0};
  runtime::Time exited{0};
  double outcome = 0.0;
  bool via_exception = false;
};

enum class ExecutionStatus {
  kPending,
  kRunning,
  kSucceeded,   ///< reached a FinalKind::kSuccess state
  kRolledBack,  ///< reached a FinalKind::kRollback state
  kAborted,
  kFailed,  ///< internal error (e.g. transition-loop guard)
};

class StrategyExecution {
 public:
  struct Options {
    /// Abort guard against zero-duration transition cycles.
    std::uint64_t max_transitions = 100000;
  };

  /// `def` must already pass core::validate(). The listener receives
  /// every status event (sequence is left 0; the Engine assigns it).
  StrategyExecution(std::string id, runtime::Scheduler& scheduler,
                    MetricsClient& metrics, ProxyController& proxies,
                    core::StrategyDef def, StatusListener listener,
                    Options options);
  StrategyExecution(std::string id, runtime::Scheduler& scheduler,
                    MetricsClient& metrics, ProxyController& proxies,
                    core::StrategyDef def, StatusListener listener)
      : StrategyExecution(std::move(id), scheduler, metrics, proxies,
                          std::move(def), std::move(listener), Options{}) {}

  StrategyExecution(const StrategyExecution&) = delete;
  StrategyExecution& operator=(const StrategyExecution&) = delete;

  /// Enters the initial state. Must be called on the scheduler thread
  /// (or before the scheduler starts delivering timers).
  void start();

  /// Stops all timers and marks the execution aborted.
  void abort(const std::string& reason);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] ExecutionStatus status() const { return status_; }
  [[nodiscard]] const std::string& current_state() const {
    return current_state_;
  }
  [[nodiscard]] const core::StrategyDef& definition() const { return def_; }
  [[nodiscard]] const std::vector<StateVisit>& history() const {
    return history_;
  }
  [[nodiscard]] runtime::Time started_at() const { return started_at_; }
  [[nodiscard]] runtime::Time finished_at() const { return finished_at_; }

  /// Total enactment wall time minus the specified (nominal) duration of
  /// the states actually visited — the "delay of specified execution
  /// time" in the paper's Figures 8 and 10. Only valid once finished.
  [[nodiscard]] runtime::Duration enactment_delay() const;

  [[nodiscard]] std::uint64_t checks_executed() const {
    return checks_executed_;
  }

 private:
  struct CheckRuntime {
    const core::CheckDef* def = nullptr;
    int executed = 0;
    int successes = 0;
    bool done = false;
  };

  void enter_state(const std::string& name);
  /// Pushes the state's routing tables. Returns false when a proxy
  /// update failed past its retry budget and the execution was diverted
  /// into its rollback path (or aborted) — the caller must stop
  /// processing the state it was entering.
  bool apply_routing(const core::StateDef& state);
  /// Aborts into the strategy's first rollback-final state (or aborts
  /// outright when none exists) after an unrecoverable proxy failure.
  void rollback_or_abort(const std::string& reason);
  void schedule_check(std::size_t check_index);
  void run_check_execution(std::size_t check_index);
  /// One execution of the check's evaluation function. Provider errors
  /// encountered along the way are appended to `degraded_detail` so the
  /// caller can surface them on the event stream.
  bool evaluate_check_once(const core::CheckDef& check,
                           std::string& degraded_detail);
  void maybe_complete_state();
  void complete_state();
  void transition_to(const std::string& next, bool via_exception);
  void finish(ExecutionStatus status);
  void emit(StatusEvent::Type type, const std::string& state,
            const std::string& check = "", double value = 0.0,
            const std::string& detail = "");
  [[nodiscard]] double now_seconds() const;

  std::string id_;
  runtime::Scheduler& scheduler_;
  MetricsClient& metrics_;
  ProxyController& proxies_;
  core::StrategyDef def_;
  StatusListener listener_;
  Options options_;

  ExecutionStatus status_ = ExecutionStatus::kPending;
  std::string current_state_;
  const core::StateDef* state_ = nullptr;
  std::uint64_t generation_ = 0;  ///< invalidates timers of left states
  std::vector<CheckRuntime> checks_;
  bool dwell_elapsed_ = false;
  std::vector<StateVisit> history_;
  runtime::Time started_at_{0};
  runtime::Time finished_at_{0};
  std::uint64_t transitions_ = 0;
  std::uint64_t checks_executed_ = 0;
};

}  // namespace bifrost::engine
