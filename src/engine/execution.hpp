// Enactment of a single strategy: the engine-side interpreter of the
// formal model's automaton. The automaton step is single-threaded: all
// state mutation, journaling, and event emission run on the owning
// Scheduler's thread (run-to-completion, as in the paper's Node.js
// engine).
//
// Parallel check scheduling: with Options::check_executor set, the
// *evaluation* of a check (metric fetches + condition checks — the
// paper's engine bottleneck, Figures 9-10) runs as a job on that
// executor, off the scheduler thread. The job touches only immutable
// strategy definition data and the MetricsClient (which must then be
// thread-safe); its result is marshalled back onto the owning Scheduler
// via a posted timer, so CheckRuntime aggregates, checks_executed_, the
// journal, and the status stream are still touched single-threaded and
// records stay in a deterministic order under deterministic schedulers.
//
// Durability: when Options::durability is set, every externally visible
// transition is journaled through it *at the moment it happens*, and a
// crashed engine can rebuild the execution from the journal (see
// engine/recovery.hpp) and call resume() to continue exactly where the
// last record left off.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/model.hpp"
#include "engine/fleet.hpp"
#include "engine/interfaces.hpp"
#include "engine/journal.hpp"
#include "runtime/executor.hpp"
#include "runtime/scheduler.hpp"

namespace bifrost::engine {

/// Per-state timing of one visit (used to compute enactment delay, the
/// metric of the paper's Figures 8 and 10).
struct StateVisit {
  std::string state;
  runtime::Time entered{0};
  runtime::Time exited{0};
  double outcome = 0.0;
  bool via_exception = false;
};

enum class ExecutionStatus {
  kPending,
  kRunning,
  kSucceeded,   ///< reached a FinalKind::kSuccess state
  kRolledBack,  ///< reached a FinalKind::kRollback state
  kAborted,
  kFailed,  ///< internal error (e.g. transition-loop guard)
};

[[nodiscard]] const char* execution_status_name(ExecutionStatus status);
[[nodiscard]] std::optional<ExecutionStatus> execution_status_from_name(
    std::string_view name);

/// Reconstructed execution context, built by journal replay (see
/// engine/recovery.hpp) and handed to StrategyExecution::resume().
/// Mirrors the in-memory progress the execution had when its last
/// journal record was written, plus the continuation ("pending") that
/// the record implies but that was not itself journaled yet.
struct ResumeState {
  ExecutionStatus status = ExecutionStatus::kRunning;
  std::string current_state;
  runtime::Time started_at{0};
  runtime::Time finished_at{0};
  std::vector<StateVisit> history;  ///< includes the current (open) visit
  std::uint64_t transitions = 0;
  std::uint64_t checks_executed = 0;

  /// Routing-application progress of the current state visit, indexed
  /// like StateDef::routing of the current state.
  struct ApplyProgress {
    bool intent_journaled = false;
    std::uint64_t epoch = 0;  ///< valid when intent_journaled
    bool acked = false;
    bool ok = false;  ///< ack verdict when acked
    /// Federated services only: journaled per-region verdicts of the
    /// in-flight fleet push (region name -> ok). A crash between two
    /// region acks resumes here — acked regions are not re-pushed,
    /// the rest re-push with the journaled epoch (the proxy dedupes).
    std::map<std::string, bool> region_acks;
  };
  std::vector<ApplyProgress> applies;

  /// Check aggregates of the current state visit, indexed like
  /// StateDef::checks of the current state.
  struct CheckProgress {
    int executed = 0;
    int successes = 0;
    bool done = false;
    /// Absolute deadline of the next execution; Time{0} means no
    /// execution happened yet this visit (first deadline is then
    /// entered + interval).
    runtime::Time next_deadline{0};
  };
  std::vector<CheckProgress> checks;

  /// The work between the last journal record and the next one — what
  /// the engine was about to do when it died.
  enum class Pending {
    kNone,        ///< mid-state: finish applies, re-arm timers, keep going
    kStart,       ///< submitted but never started
    kEnterState,  ///< enter `target` fresh (after kStarted; no exit work)
    kTransition,  ///< leave the current state for `target` (after completion)
    kException,   ///< exception fired: transition to `target` via exception
    kRollback,    ///< unrecoverable proxy failure: divert to rollback path
  };
  Pending pending = Pending::kNone;
  std::string target;  ///< successor (kEnterState/kTransition/kException)
  std::string pending_check;  ///< check that fired (kException)
  bool exception_journaled = false;  ///< kExceptionTriggered already journaled
  std::string pending_reason;        ///< failure reason (kRollback)
};

class StrategyExecution {
 public:
  struct Options {
    /// Abort guard against zero-duration transition cycles.
    std::uint64_t max_transitions = 100000;
    /// Optional write-ahead journal sink (owned by the Engine).
    DurabilitySink* durability = nullptr;
    /// Allocates the config epoch for an apply intent against a
    /// service's proxy. Null means unversioned applies (epoch 0).
    std::function<std::uint64_t(const std::string& service)> epoch_allocator;
    /// Runs check evaluations (metric fetches + condition checks) as
    /// jobs instead of inline on the scheduler thread. Not owned; must
    /// outlive the execution. The MetricsClient must be thread-safe
    /// when this is set (jobs may query it concurrently). Null = the
    /// classic inline, run-to-completion engine.
    runtime::Executor* check_executor = nullptr;
    /// Fans multi-region config pushes out in parallel instead of
    /// sequentially in canary order. Must be a real thread pool (never
    /// a simulated executor — Fleet::push joins futures; see
    /// engine/fleet.hpp). Null = sequential, the deterministic arm.
    runtime::Executor* fleet_executor = nullptr;
  };

  /// `def` must already pass core::validate(). The listener receives
  /// every status event (sequence is left 0; the Engine assigns it).
  StrategyExecution(std::string id, runtime::Scheduler& scheduler,
                    MetricsClient& metrics, ProxyController& proxies,
                    core::StrategyDef def, StatusListener listener,
                    Options options);
  StrategyExecution(std::string id, runtime::Scheduler& scheduler,
                    MetricsClient& metrics, ProxyController& proxies,
                    core::StrategyDef def, StatusListener listener)
      : StrategyExecution(std::move(id), scheduler, metrics, proxies,
                          std::move(def), std::move(listener), Options{}) {}
  /// Cancels every timer this execution still has pending, so the
  /// scheduler never fires into a destroyed object (the engine may be
  /// torn down mid-run — deliberately so in the crash-recovery tests).
  ~StrategyExecution();

  StrategyExecution(const StrategyExecution&) = delete;
  StrategyExecution& operator=(const StrategyExecution&) = delete;

  /// Enters the initial state. Must be called on the scheduler thread
  /// (or before the scheduler starts delivering timers).
  void start();

  /// Stops all timers and marks the execution aborted.
  void abort(const std::string& reason);

  /// Thread-safe: schedules start()/abort() onto the scheduler thread
  /// through a tracked (cancellable) timer.
  void request_start();
  void request_abort(std::string reason);

  /// Continues an execution reconstructed from the journal: re-installs
  /// aggregates and history, finishes any half-applied routing, re-arms
  /// timers at their journaled absolute deadlines, and runs the pending
  /// continuation. Call instead of start(), from the scheduler thread
  /// or before the scheduler delivers timers.
  void resume(ResumeState state);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] ExecutionStatus status() const { return status_; }
  [[nodiscard]] const std::string& current_state() const {
    return current_state_;
  }
  [[nodiscard]] const core::StrategyDef& definition() const { return def_; }
  [[nodiscard]] const std::vector<StateVisit>& history() const {
    return history_;
  }
  [[nodiscard]] runtime::Time started_at() const { return started_at_; }
  [[nodiscard]] runtime::Time finished_at() const { return finished_at_; }

  /// Total enactment wall time minus the specified (nominal) duration of
  /// the states actually visited — the "delay of specified execution
  /// time" in the paper's Figures 8 and 10. Only valid once finished.
  [[nodiscard]] runtime::Duration enactment_delay() const;

  [[nodiscard]] std::uint64_t checks_executed() const {
    return checks_executed_;
  }

 private:
  struct CheckRuntime {
    const core::CheckDef* def = nullptr;
    int executed = 0;
    int successes = 0;
    bool done = false;
  };

  enum class ApplyOutcome { kContinue, kDiverted };

  void enter_state(const std::string& name);
  /// Pushes the state's routing tables. Returns false when a proxy
  /// update failed past its retry budget and the execution was diverted
  /// into its rollback path (or aborted) — the caller must stop
  /// processing the state it was entering.
  bool apply_routing(const core::StateDef& state);
  /// Applies routing entry `index` of `state`: journals the intent
  /// (unless already journaled pre-crash), calls the proxy, journals
  /// the ack. `forced_epoch` re-uses a journaled epoch during resume;
  /// `region_acks` carries journaled per-region verdicts of a fleet
  /// push interrupted mid-fan-out (null outside resume).
  ApplyOutcome apply_one_routing(
      const core::StateDef& state, std::size_t index,
      std::optional<std::uint64_t> forced_epoch,
      bool intent_already_journaled,
      const std::map<std::string, bool>* region_acks = nullptr);
  /// Fleet arm of apply_one_routing: fans the config out to the
  /// routing's targeted regions, journals one kRegionAck per region and
  /// a final kApplyAck whose verdict is the quorum test, and maintains
  /// the degraded-region set (kRegionDegraded / kRegionRecovered).
  ApplyOutcome apply_fleet_routing(
      const core::StateDef& state, std::size_t index,
      const core::ServiceDef& service, const proxy::ProxyConfig& config,
      std::uint64_t epoch, const std::map<std::string, bool>* region_acks);
  /// Aborts into the strategy's first rollback-final state (or aborts
  /// outright when none exists) after an unrecoverable proxy failure.
  void rollback_or_abort(const std::string& reason);
  void schedule_check(std::size_t check_index);
  void arm_check_at(std::size_t check_index, runtime::Time deadline);
  /// One due execution of check `check_index`: evaluates inline (no
  /// executor) or submits the evaluation as a pool job whose result is
  /// marshalled back onto the scheduler thread.
  void run_check_execution(std::size_t check_index);
  /// Scheduler-thread half of a check execution: applies `success` /
  /// `degraded_detail` to the aggregates, emits + journals, and either
  /// re-arms, fires the exception fallback, or completes the state.
  void finish_check_execution(std::size_t check_index, bool success,
                              const std::string& degraded_detail);
  /// One execution of the check's evaluation function. Provider errors
  /// encountered along the way are appended to `degraded_detail` so the
  /// caller can surface them on the event stream. Const and touching
  /// only immutable definition data + the MetricsClient, so it is safe
  /// to run off-thread as a check_executor job.
  bool evaluate_check_once(const core::CheckDef& check,
                           std::string& degraded_detail) const;
  /// Evaluates a cross-region condition: queries the metric once per
  /// region of the condition's federated service ("$region" in the
  /// query is substituted with the region name) and folds the values
  /// through the condition's aggregate (max / min / weighted mean /
  /// delta = canary minus weighted mean of the rest). Regions without
  /// data are skipped; no region reporting = no data.
  [[nodiscard]] util::Result<std::optional<double>> aggregate_condition(
      core::EvalContext& context, const core::MetricCondition& condition) const;
  void maybe_complete_state();
  void complete_state();
  void transition_to(const std::string& next, bool via_exception);
  void finish(ExecutionStatus status);
  /// Continues in the middle of a state after a restart (the
  /// Pending::kNone arm of resume()).
  void resume_in_state(const ResumeState& state);
  void emit(StatusEvent::Type type, const std::string& state,
            const std::string& check = "", double value = 0.0,
            const std::string& detail = "");
  void journal(RecordType type, json::Object data);
  [[nodiscard]] double now_seconds() const;
  [[nodiscard]] std::int64_t now_ns() const;
  /// Schedules `body` at `when` through a timer tracked for destructor
  /// cancellation. All internal scheduling goes through this.
  void arm_at(runtime::Time when, std::function<void()> body);

  std::string id_;
  runtime::Scheduler& scheduler_;
  MetricsClient& metrics_;
  ProxyController& proxies_;
  core::StrategyDef def_;
  StatusListener listener_;
  Options options_;
  Fleet fleet_;  ///< fan-out for federated services (wraps proxies_)
  /// Regions per service currently marked degraded (missed a quorate
  /// push and not yet converged by a later push or an engine resync).
  std::map<std::string, std::set<std::string>> degraded_regions_;

  ExecutionStatus status_ = ExecutionStatus::kPending;
  std::string current_state_;
  const core::StateDef* state_ = nullptr;
  std::uint64_t generation_ = 0;  ///< invalidates timers of left states
  std::vector<CheckRuntime> checks_;
  bool dwell_elapsed_ = false;
  std::vector<StateVisit> history_;
  runtime::Time started_at_{0};
  runtime::Time finished_at_{0};
  std::uint64_t transitions_ = 0;
  std::uint64_t checks_executed_ = 0;

  /// Timers armed but not yet fired; guarded by timers_mutex_ because
  /// request_start()/request_abort() arm from foreign threads (and
  /// check-evaluation jobs arm their marshalling timers from workers).
  std::mutex timers_mutex_;
  std::unordered_set<runtime::TimerId> live_timers_;

  /// Lifetime guard shared with in-flight check-evaluation jobs: a job
  /// holds the lock shared while it reads `this`; the destructor takes
  /// it exclusive, flips `dead`, and thereby waits out running jobs —
  /// a queued job that starts later sees `dead` and returns without
  /// touching the (destroyed) execution.
  struct AsyncGuard {
    std::shared_mutex mutex;
    bool dead = false;  ///< write under exclusive, read under shared lock
  };
  std::shared_ptr<AsyncGuard> async_guard_ =
      std::make_shared<AsyncGuard>();
};

}  // namespace bifrost::engine
