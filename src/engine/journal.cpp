#include "engine/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/crc32.hpp"

namespace bifrost::engine {
namespace {

using util::Result;

constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc32
// A frame longer than this is treated as corruption, not a record: the
// length field most likely contains garbage from a torn write.
constexpr std::uint32_t kMaxRecordBytes = 64u * 1024u * 1024u;

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

std::uint32_t get_u32_le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

const char* record_type_name(RecordType type) {
  switch (type) {
    case RecordType::kSubmit:
      return "submit";
    case RecordType::kStarted:
      return "started";
    case RecordType::kStateEntered:
      return "state_entered";
    case RecordType::kCheckExecuted:
      return "check_executed";
    case RecordType::kStateCompleted:
      return "state_completed";
    case RecordType::kExceptionTriggered:
      return "exception_triggered";
    case RecordType::kApplyIntent:
      return "apply_intent";
    case RecordType::kApplyAck:
      return "apply_ack";
    case RecordType::kFinished:
      return "finished";
    case RecordType::kAborted:
      return "aborted";
    case RecordType::kSnapshot:
      return "snapshot";
    case RecordType::kRecovered:
      return "recovered";
    case RecordType::kReconciled:
      return "reconciled";
    case RecordType::kRegionAck:
      return "region_ack";
  }
  return "unknown";
}

std::optional<RecordType> record_type_from_name(std::string_view name) {
  static constexpr RecordType kAll[] = {
      RecordType::kSubmit,        RecordType::kStarted,
      RecordType::kStateEntered,  RecordType::kCheckExecuted,
      RecordType::kStateCompleted, RecordType::kExceptionTriggered,
      RecordType::kApplyIntent,   RecordType::kApplyAck,
      RecordType::kFinished,      RecordType::kAborted,
      RecordType::kSnapshot,      RecordType::kRecovered,
      RecordType::kReconciled,    RecordType::kRegionAck,
  };
  for (RecordType t : kAll) {
    if (name == record_type_name(t)) return t;
  }
  return std::nullopt;
}

// --------------------------------------------------------------------------
// Framing

std::string frame_record(RecordType type, const json::Value& data) {
  json::Object envelope;
  envelope["type"] = record_type_name(type);
  envelope["data"] = data;
  const std::string payload = json::Value(std::move(envelope)).dump();

  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put_u32_le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(frame, util::crc32(payload));
  frame += payload;
  return frame;
}

JournalReadResult parse_journal_bytes(std::string_view bytes) {
  JournalReadResult result;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameHeader) {
      result.truncated_tail = true;
      result.truncation_reason = "short frame header at offset " +
                                 std::to_string(offset);
      break;
    }
    const std::uint32_t length = get_u32_le(bytes.data() + offset);
    const std::uint32_t crc = get_u32_le(bytes.data() + offset + 4);
    if (length > kMaxRecordBytes) {
      result.truncated_tail = true;
      result.truncation_reason = "implausible record length " +
                                 std::to_string(length) + " at offset " +
                                 std::to_string(offset);
      break;
    }
    if (bytes.size() - offset - kFrameHeader < length) {
      result.truncated_tail = true;
      result.truncation_reason = "record body past end of file at offset " +
                                 std::to_string(offset);
      break;
    }
    const std::string_view payload =
        bytes.substr(offset + kFrameHeader, length);
    if (util::crc32(payload) != crc) {
      result.truncated_tail = true;
      result.truncation_reason =
          "CRC mismatch at offset " + std::to_string(offset);
      break;
    }
    auto parsed = json::parse(payload);
    if (!parsed.ok()) {
      result.truncated_tail = true;
      result.truncation_reason = "unparseable payload at offset " +
                                 std::to_string(offset) + ": " +
                                 parsed.error_message();
      break;
    }
    const std::string type_name = parsed.value().get_string("type");
    const auto type = record_type_from_name(type_name);
    if (!type.has_value()) {
      result.truncated_tail = true;
      result.truncation_reason = "unknown record type '" + type_name +
                                 "' at offset " + std::to_string(offset);
      break;
    }
    JournalRecord record;
    record.type = *type;
    if (const json::Value* data = parsed.value().find("data")) {
      record.data = *data;
    }
    result.records.push_back(std::move(record));
    offset += kFrameHeader + length;
    result.valid_bytes = offset;
  }
  return result;
}

// --------------------------------------------------------------------------
// MemoryJournal

Result<void> MemoryJournal::append(RecordType type, json::Value data) {
  records_.push_back(JournalRecord{type, std::move(data)});
  return {};
}

// --------------------------------------------------------------------------
// FileJournal

FileJournal::FileJournal(int fd, std::string path, Options options)
    : fd_(fd), path_(std::move(path)), options_(options) {}

Result<std::unique_ptr<FileJournal>> FileJournal::open(const std::string& path,
                                                       Options options) {
  if (options.sync_every == 0) options.sync_every = 1;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Result<std::unique_ptr<FileJournal>>::error(
        errno_message("open journal '" + path + "'"));
  }
  return Result<std::unique_ptr<FileJournal>>(std::unique_ptr<FileJournal>(
      new FileJournal(fd, path, options)));
}

FileJournal::~FileJournal() {
  if (fd_ >= 0) {
    if (unsynced_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

Result<void> FileJournal::append(RecordType type, json::Value data) {
  const std::string frame = frame_record(type, data);
  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Result<void>::error(errno_message("write journal"));
    }
    done += static_cast<std::size_t>(n);
  }
  ++written_;
  ++unsynced_;
  if (unsynced_ >= options_.sync_every) return sync();
  return {};
}

Result<void> FileJournal::sync() {
  if (unsynced_ == 0) return {};
  if (::fsync(fd_) != 0) {
    return Result<void>::error(errno_message("fsync journal"));
  }
  unsynced_ = 0;
  return {};
}

// --------------------------------------------------------------------------
// Reader / repair

Result<JournalReadResult> read_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Result<JournalReadResult>::error("cannot read journal '" + path +
                                            "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  return Result<JournalReadResult>(parse_journal_bytes(bytes));
}

Result<void> truncate_journal_file(const std::string& path,
                                   std::uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Result<void>::error(
        errno_message("truncate journal '" + path + "'"));
  }
  return {};
}

}  // namespace bifrost::engine
