// The Bifrost dashboard (paper §4.1): a self-contained HTML page served
// by the engine API that visualizes the execution state of release
// strategies in real time. It polls the engine's own REST endpoints
// (/strategies and the long-poll /events stream), so it needs no build
// step and no external assets.
#pragma once

namespace bifrost::engine {

inline constexpr const char* kDashboardHtml = R"HTML(<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>Bifrost dashboard</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 2rem; background: #14171c; color: #d7dce2; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .35rem .7rem;
           border-bottom: 1px solid #2a2f37; font-size: .85rem; }
  th { color: #8b949e; font-weight: normal; }
  .running   { color: #58a6ff; } .succeeded { color: #3fb950; }
  .rolled_back, .failed, .aborted { color: #f85149; }
  .pending { color: #8b949e; }
  #events { max-height: 24rem; overflow-y: auto; white-space: pre;
            font-size: .8rem; background: #0d1117; padding: .8rem;
            border-radius: 6px; }
  .muted { color: #8b949e; }
  /* resilience events: degradation must stand out in the stream */
  .ev-retried { color: #d29922; }
  .ev-degraded, .ev-circuit_opened, .ev-error { color: #f85149; }
  .ev-backend_ejected { color: #f85149; }
  .ev-circuit_closed, .ev-backend_recovered { color: #3fb950; }
  .ev-load_shed { color: #d29922; }
  /* durability events: recovery/reconciliation after an engine restart */
  .ev-recovered, .ev-reconciled { color: #a371f7; }
</style>
</head>
<body>
<h1>Bifrost dashboard</h1>
<div class="muted" id="meta">connecting&hellip;</div>
<h2>Strategies</h2>
<table>
  <thead><tr><th>id</th><th>name</th><th>status</th><th>state</th>
  <th>transitions</th><th>checks</th><th>delay&nbsp;(s)</th></tr></thead>
  <tbody id="strategies"></tbody>
</table>
<h2>Event stream</h2>
<div id="events"></div>
<script>
let since = 0;
const eventsBox = document.getElementById('events');

async function refreshStrategies() {
  try {
    const res = await fetch('/strategies');
    const list = await res.json();
    const rows = list.map(s =>
      `<tr><td>${s.id}</td><td>${s.name}</td>` +
      `<td class="${s.status}">${s.status}</td>` +
      `<td>${s.currentState || '-'}</td><td>${s.transitions}</td>` +
      `<td>${s.checksExecuted}</td>` +
      `<td>${(s.enactmentDelaySeconds || 0).toFixed(2)}</td></tr>`);
    document.getElementById('strategies').innerHTML = rows.join('');
    document.getElementById('meta').textContent =
      `${list.length} strategies - ${new Date().toLocaleTimeString()}`;
  } catch (e) {
    document.getElementById('meta').textContent = 'engine unreachable';
  }
}

async function pollEvents() {
  for (;;) {
    try {
      const res = await fetch(`/events?since=${since}&wait=20000`);
      const events = await res.json();
      for (const ev of events) {
        since = Math.max(since, ev.seq);
        const line = `[${ev.time.toFixed(2).padStart(9)}] ` +
          `${ev.strategy.padEnd(8)} ${ev.type.padEnd(18)} ` +
          `${(ev.state || '').padEnd(16)} ${ev.check || ''} ` +
          `${ev.detail || ''}`;
        const div = document.createElement('div');
        div.textContent = line;
        div.className = 'ev-' + ev.type;
        eventsBox.appendChild(div);
        eventsBox.scrollTop = eventsBox.scrollHeight;
      }
      if (events.length) refreshStrategies();
    } catch (e) {
      await new Promise(r => setTimeout(r, 2000));
    }
  }
}

refreshStrategies();
setInterval(refreshStrategies, 5000);
pollEvents();
</script>
</body>
</html>
)HTML";

}  // namespace bifrost::engine
