#include "engine/fleet.hpp"

#include <algorithm>
#include <future>

namespace bifrost::engine {

std::string Fleet::PushResult::failed_regions() const {
  std::string out;
  for (const RegionOutcome& outcome : outcomes) {
    if (outcome.ok) continue;
    if (!out.empty()) out += ",";
    out += outcome.region->name;
  }
  return out;
}

std::vector<const core::RegionDef*> Fleet::targets(
    const core::ServiceDef& service, const std::vector<std::string>& scope) {
  std::vector<const core::RegionDef*> ordered =
      service.regions_in_canary_order();
  if (scope.empty()) return ordered;
  std::erase_if(ordered, [&](const core::RegionDef* region) {
    return std::find(scope.begin(), scope.end(), region->name) == scope.end();
  });
  return ordered;
}

int Fleet::required_acks(const core::ServiceDef& service,
                         std::size_t targeted) {
  return std::min(service.quorum_size(), static_cast<int>(targeted));
}

Fleet::PushResult Fleet::push(const core::ServiceDef& service,
                              const proxy::ProxyConfig& config,
                              const std::vector<std::string>& scope,
                              const SkipFn& skip, const AckFn& on_ack) {
  PushResult result;
  const std::vector<const core::RegionDef*> regions = targets(service, scope);
  result.required = required_acks(service, regions.size());
  result.outcomes.reserve(regions.size());

  // Seed the outcome list in canary order; journaled verdicts (resume
  // re-entering a half-pushed state) short-circuit their region.
  std::vector<std::size_t> fresh;
  for (const core::RegionDef* region : regions) {
    RegionOutcome outcome;
    outcome.region = region;
    if (skip) {
      if (const std::optional<bool> verdict = skip(region->name)) {
        outcome.skipped = true;
        outcome.ok = *verdict;
        if (!outcome.ok) outcome.error = "journaled failure";
        result.outcomes.push_back(std::move(outcome));
        continue;
      }
    }
    fresh.push_back(result.outcomes.size());
    result.outcomes.push_back(std::move(outcome));
  }

  if (executor_ != nullptr && fresh.size() > 1) {
    // Parallel fan-out: one job per region, joined in canary order so
    // the observable outcome sequence matches the sequential arm.
    std::vector<std::future<util::Result<void>>> futures;
    futures.reserve(fresh.size());
    for (std::size_t index : fresh) {
      auto promise = std::make_shared<std::promise<util::Result<void>>>();
      futures.push_back(promise->get_future());
      const core::RegionDef* region = result.outcomes[index].region;
      const bool accepted = executor_->submit([this, &service, region, &config,
                                               promise] {
        promise->set_value(proxies_.apply_region(service, *region, config));
      });
      if (!accepted) {
        // Executor shutting down: run inline rather than losing the push.
        promise->set_value(proxies_.apply_region(service, *region, config));
      }
    }
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      RegionOutcome& outcome = result.outcomes[fresh[i]];
      const util::Result<void> applied = futures[i].get();
      outcome.ok = applied.ok();
      if (!applied.ok()) outcome.error = applied.error_message();
      if (on_ack) on_ack(outcome);
    }
  } else {
    for (std::size_t index : fresh) {
      RegionOutcome& outcome = result.outcomes[index];
      const util::Result<void> applied =
          proxies_.apply_region(service, *outcome.region, config);
      outcome.ok = applied.ok();
      if (!applied.ok()) outcome.error = applied.error_message();
      if (on_ack) on_ack(outcome);
    }
  }

  for (const RegionOutcome& outcome : result.outcomes) {
    if (outcome.ok) ++result.acked;
  }
  return result;
}

}  // namespace bifrost::engine
