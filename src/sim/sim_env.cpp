#include "sim/sim_env.hpp"

#include <chrono>

namespace bifrost::sim {

SimMetricsClient::SimMetricsClient(Simulation& sim, MetricFn source,
                                   Costs costs)
    : sim_(sim), source_(std::move(source)), costs_(costs) {}

util::Result<std::optional<double>> SimMetricsClient::query(
    const core::ProviderConfig& provider, const std::string& query) {
  // Per-provider cost override, keyed by the provider's host field (sim
  // strategies use symbolic hosts like "prometheus" / "availability").
  const auto it = costs_.per_provider.find(provider.host);
  const QueryCost& cost =
      it != costs_.per_provider.end() ? it->second : costs_.default_query;
  sim_.consume(cost.engine);
  sim_.wait_external(cost.wait);
  ++queries_;
  if (fault_plan_) {
    auto outcome = fault_plan_->decide(FaultPlan::Target::kMetrics,
                                       provider.host, sim_.now());
    if (outcome.extra_latency > runtime::Duration::zero()) {
      sim_.wait_external(outcome.extra_latency);
    }
    if (outcome.error) {
      return util::Result<std::optional<double>>::error(outcome.reason);
    }
  }
  const double now_seconds =
      std::chrono::duration<double>(sim_.now()).count();
  if (!source_) return std::optional<double>{};
  return source_(query, now_seconds);
}

SimProxyController::SimProxyController(Simulation& sim, Costs costs)
    : sim_(sim), costs_(costs) {}

util::Result<void> SimProxyController::apply(const core::ServiceDef& service,
                                             const proxy::ProxyConfig& config) {
  sim_.consume(costs_.per_update);
  sim_.wait_external(costs_.update_wait);
  ++updates_;
  if (fault_plan_) {
    auto outcome = fault_plan_->decide(FaultPlan::Target::kProxy, service.name,
                                       sim_.now());
    if (outcome.extra_latency > runtime::Duration::zero()) {
      sim_.wait_external(outcome.extra_latency);
    }
    // A failed update never reaches the proxy: last_config_ keeps the
    // previous routing so tests can assert what production still sees.
    if (outcome.error) return util::Result<void>::error(outcome.reason);
    if (outcome.crash) {
      // The update reached the proxy; the engine dies before the ack.
      install(service.name, config);
      throw CrashInjected(outcome.reason);
    }
  }
  install(service.name, config);
  return {};
}

util::Result<void> SimProxyController::apply_region(
    const core::ServiceDef& service, const core::RegionDef& region,
    const proxy::ProxyConfig& config) {
  sim_.consume(costs_.per_update);
  sim_.wait_external(costs_.update_wait);
  ++updates_;
  const std::string key = service.name + "/" + region.name;
  if (fault_plan_) {
    auto outcome = fault_plan_->decide(FaultPlan::Target::kRegion, region.name,
                                       sim_.now());
    if (outcome.extra_latency > runtime::Duration::zero()) {
      sim_.wait_external(outcome.extra_latency);
    }
    // A partitioned region never sees the push: its installed state
    // keeps the previous epoch until the partition heals.
    if (outcome.error) return util::Result<void>::error(outcome.reason);
    if (outcome.crash) {
      // The update reached the region's proxy; the engine dies before
      // the ack — exactly the boundary the crash-matrix tests walk.
      install(key, config);
      throw CrashInjected(outcome.reason);
    }
  }
  install(key, config);
  return {};
}

void SimProxyController::install(const std::string& service,
                                 const proxy::ProxyConfig& config) {
  engine::ProxyStateView& state = states_[service];
  // Same duplicate-epoch guard as the real proxy: a re-issued intent
  // with an already-applied (or older) epoch is an idempotent no-op.
  if (config.epoch != 0 && config.epoch <= state.epoch) {
    ++duplicate_epochs_;
    return;
  }
  if (config.epoch != 0) state.epoch = config.epoch;
  state.config = config;
  last_config_ = config;
}

util::Result<engine::ProxyStateView> SimProxyController::fetch(
    const core::ServiceDef& service) {
  const auto it = states_.find(service.name);
  if (it == states_.end()) {
    return util::Result<engine::ProxyStateView>::error(
        "no config applied for service '" + service.name + "'");
  }
  return it->second;
}

util::Result<engine::ProxyStateView> SimProxyController::fetch_region(
    const core::ServiceDef& service, const core::RegionDef& region) {
  if (fault_plan_) {
    // A partitioned region cannot be read either. Windows are checked
    // directly (not via decide()) so a read-back consumes no RNG draw
    // and never advances the apply-crash counter.
    for (const FaultPlan::Window& window : fault_plan_->windows()) {
      if (window.target != FaultPlan::Target::kRegion) continue;
      if (!window.name.empty() && window.name != region.name) continue;
      if (sim_.now() < window.from || sim_.now() >= window.to) continue;
      return util::Result<engine::ProxyStateView>::error(
          "injected partition of region '" + region.name + "'");
    }
  }
  const auto it = states_.find(service.name + "/" + region.name);
  if (it == states_.end()) {
    return util::Result<engine::ProxyStateView>::error(
        "no config applied for region '" + region.name + "' of service '" +
        service.name + "'");
  }
  return it->second;
}

engine::SleepFn external_sleeper(Simulation& sim) {
  return [&sim](runtime::Duration d) { sim.wait_external(d); };
}

engine::StatusListener charged_listener(Simulation& sim,
                                        runtime::Duration per_event,
                                        engine::StatusListener inner) {
  return [&sim, per_event, inner = std::move(inner)](
             const engine::StatusEvent& event) {
    sim.consume(per_event);
    if (inner) inner(event);
  };
}

MetricFn always_healthy(double healthy_value) {
  return [healthy_value](const std::string& query,
                         double) -> std::optional<double> {
    if (query.find("error") != std::string::npos) return 0.0;
    return healthy_value;
  };
}

}  // namespace bifrost::sim
