#include "sim/sim_env.hpp"

#include <chrono>

namespace bifrost::sim {

SimMetricsClient::SimMetricsClient(Simulation& sim, MetricFn source,
                                   Costs costs)
    : sim_(sim), source_(std::move(source)), costs_(costs) {}

util::Result<std::optional<double>> SimMetricsClient::query(
    const core::ProviderConfig& provider, const std::string& query) {
  // Per-provider cost override, keyed by the provider's host field (sim
  // strategies use symbolic hosts like "prometheus" / "availability").
  const auto it = costs_.per_provider.find(provider.host);
  const QueryCost& cost =
      it != costs_.per_provider.end() ? it->second : costs_.default_query;
  sim_.consume(cost.engine);
  sim_.wait_external(cost.wait);
  ++queries_;
  if (fault_plan_) {
    auto outcome = fault_plan_->decide(FaultPlan::Target::kMetrics,
                                       provider.host, sim_.now());
    if (outcome.extra_latency > runtime::Duration::zero()) {
      sim_.wait_external(outcome.extra_latency);
    }
    if (outcome.error) {
      return util::Result<std::optional<double>>::error(outcome.reason);
    }
  }
  const double now_seconds =
      std::chrono::duration<double>(sim_.now()).count();
  if (!source_) return std::optional<double>{};
  return source_(query, now_seconds);
}

SimProxyController::SimProxyController(Simulation& sim, Costs costs)
    : sim_(sim), costs_(costs) {}

util::Result<void> SimProxyController::apply(const core::ServiceDef& service,
                                             const proxy::ProxyConfig& config) {
  sim_.consume(costs_.per_update);
  sim_.wait_external(costs_.update_wait);
  ++updates_;
  if (fault_plan_) {
    auto outcome = fault_plan_->decide(FaultPlan::Target::kProxy, service.name,
                                       sim_.now());
    if (outcome.extra_latency > runtime::Duration::zero()) {
      sim_.wait_external(outcome.extra_latency);
    }
    // A failed update never reaches the proxy: last_config_ keeps the
    // previous routing so tests can assert what production still sees.
    if (outcome.error) return util::Result<void>::error(outcome.reason);
    if (outcome.crash) {
      // The update reached the proxy; the engine dies before the ack.
      install(service.name, config);
      throw CrashInjected(outcome.reason);
    }
  }
  install(service.name, config);
  return {};
}

void SimProxyController::install(const std::string& service,
                                 const proxy::ProxyConfig& config) {
  engine::ProxyStateView& state = states_[service];
  // Same duplicate-epoch guard as the real proxy: a re-issued intent
  // with an already-applied (or older) epoch is an idempotent no-op.
  if (config.epoch != 0 && config.epoch <= state.epoch) {
    ++duplicate_epochs_;
    return;
  }
  if (config.epoch != 0) state.epoch = config.epoch;
  state.config = config;
  last_config_ = config;
}

util::Result<engine::ProxyStateView> SimProxyController::fetch(
    const core::ServiceDef& service) {
  const auto it = states_.find(service.name);
  if (it == states_.end()) {
    return util::Result<engine::ProxyStateView>::error(
        "no config applied for service '" + service.name + "'");
  }
  return it->second;
}

engine::SleepFn external_sleeper(Simulation& sim) {
  return [&sim](runtime::Duration d) { sim.wait_external(d); };
}

engine::StatusListener charged_listener(Simulation& sim,
                                        runtime::Duration per_event,
                                        engine::StatusListener inner) {
  return [&sim, per_event, inner = std::move(inner)](
             const engine::StatusEvent& event) {
    sim.consume(per_event);
    if (inner) inner(event);
  };
}

MetricFn always_healthy(double healthy_value) {
  return [healthy_value](const std::string& query,
                         double) -> std::optional<double> {
    if (query.find("error") != std::string::npos) return 0.0;
    return healthy_value;
  };
}

}  // namespace bifrost::sim
