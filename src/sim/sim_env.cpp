#include "sim/sim_env.hpp"

#include <chrono>

namespace bifrost::sim {

SimMetricsClient::SimMetricsClient(Simulation& sim, MetricFn source,
                                   Costs costs)
    : sim_(sim), source_(std::move(source)), costs_(costs) {}

util::Result<std::optional<double>> SimMetricsClient::query(
    const core::ProviderConfig& provider, const std::string& query) {
  // Per-provider cost override, keyed by the provider's host field (sim
  // strategies use symbolic hosts like "prometheus" / "availability").
  const auto it = costs_.per_provider.find(provider.host);
  const QueryCost& cost =
      it != costs_.per_provider.end() ? it->second : costs_.default_query;
  sim_.consume(cost.engine);
  sim_.wait_external(cost.wait);
  ++queries_;
  const double now_seconds =
      std::chrono::duration<double>(sim_.now()).count();
  if (!source_) return std::optional<double>{};
  return source_(query, now_seconds);
}

SimProxyController::SimProxyController(Simulation& sim, Costs costs)
    : sim_(sim), costs_(costs) {}

util::Result<void> SimProxyController::apply(const core::ServiceDef& service,
                                             const proxy::ProxyConfig& config) {
  (void)service;
  sim_.consume(costs_.per_update);
  sim_.wait_external(costs_.update_wait);
  ++updates_;
  last_config_ = config;
  return {};
}

engine::StatusListener charged_listener(Simulation& sim,
                                        runtime::Duration per_event,
                                        engine::StatusListener inner) {
  return [&sim, per_event, inner = std::move(inner)](
             const engine::StatusEvent& event) {
    sim.consume(per_event);
    if (inner) inner(event);
  };
}

MetricFn always_healthy(double healthy_value) {
  return [healthy_value](const std::string& query,
                         double) -> std::optional<double> {
    if (query.find("error") != std::string::npos) return 0.0;
    return healthy_value;
  };
}

}  // namespace bifrost::sim
