#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace bifrost::sim {

Simulation::Simulation(Options options) : options_(options) {
  if (options_.cores < 1) throw std::invalid_argument("cores must be >= 1");
  core_free_.assign(static_cast<std::size_t>(options_.cores),
                    runtime::Time{0});
}

runtime::TimerId Simulation::schedule_at(runtime::Time when, Task task) {
  const runtime::TimerId id = next_id_++;
  queue_.emplace(std::max(when, now_), std::make_pair(id, std::move(task)));
  return id;
}

void Simulation::cancel(runtime::TimerId id) { cancelled_.insert(id); }

void Simulation::consume(runtime::Duration cost) {
  if (cost <= runtime::Duration::zero()) return;
  accrue_busy(now_, cost);
  now_ += cost;
}

void Simulation::wait_external(runtime::Duration wait) {
  if (wait <= runtime::Duration::zero()) return;
  now_ += wait;
}

void Simulation::accrue_busy(runtime::Time from, runtime::Duration amount) {
  busy_ += amount;
  // Attribute busy time to sample windows, splitting across boundaries.
  const auto window = options_.sample_window;
  runtime::Time cursor = from;
  runtime::Duration remaining = amount;
  while (remaining > runtime::Duration::zero()) {
    const auto index = static_cast<std::size_t>(cursor / window);
    if (window_busy_seconds_.size() <= index) {
      window_busy_seconds_.resize(index + 1, 0.0);
    }
    const runtime::Time window_end = window * static_cast<long>(index + 1);
    const runtime::Duration in_window =
        std::min(remaining, window_end - cursor);
    window_busy_seconds_[index] +=
        std::chrono::duration<double>(in_window).count();
    cursor += in_window;
    remaining -= in_window;
  }
}

std::size_t Simulation::run_until(runtime::Time until) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const runtime::Time due = queue_.begin()->first;
    if (due > until) break;
    auto node = queue_.extract(queue_.begin());
    auto [id, task] = std::move(node.mapped());
    if (cancelled_.erase(id) > 0) continue;

    // The callback starts when both its due time has passed and a core
    // is free (FIFO dispatch over due events).
    auto free_core =
        std::min_element(core_free_.begin(), core_free_.end());
    const runtime::Time start = std::max(due, *free_core);
    if (start > until) {
      // Would start beyond the horizon; push it back and stop.
      queue_.emplace(due, std::make_pair(id, std::move(task)));
      break;
    }
    now_ = start;
    in_callback_ = true;
    consume(options_.dispatch_overhead);
    try {
      task();
    } catch (...) {
      // Leave the simulation re-usable after a throwing callback (the
      // crash harness injects sim::CrashInjected mid-run and then keeps
      // driving the same Simulation with a fresh engine).
      in_callback_ = false;
      *free_core = now_;
      ++callbacks_run_;
      throw;
    }
    in_callback_ = false;
    *free_core = now_;
    ++callbacks_run_;
    ++executed;
  }
  if (queue_.empty() || queue_.begin()->first > until) {
    if (until != runtime::Time::max()) now_ = std::max(now_, until);
  }
  return executed;
}

std::vector<double> Simulation::utilization_samples() const {
  return utilization_samples(runtime::Time{0}, now_);
}

std::vector<double> Simulation::utilization_samples(runtime::Time from,
                                                    runtime::Time to) const {
  std::vector<double> out;
  const auto window = options_.sample_window;
  const double window_seconds = std::chrono::duration<double>(window).count();
  const double capacity = window_seconds * options_.cores;
  if (to <= from || capacity <= 0.0) return out;
  const auto first = static_cast<std::size_t>(from / window);
  const auto last = static_cast<std::size_t>((to - runtime::Duration{1}) / window);
  for (std::size_t i = first; i <= last; ++i) {
    const double busy =
        i < window_busy_seconds_.size() ? window_busy_seconds_[i] : 0.0;
    out.push_back(std::clamp(busy / capacity, 0.0, 1.0));
  }
  return out;
}

}  // namespace bifrost::sim
