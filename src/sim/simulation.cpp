#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace bifrost::sim {

Simulation::Simulation(Options options) : options_(options) {
  if (options_.cores < 1) throw std::invalid_argument("cores must be >= 1");
  if (options_.workers < 0) {
    throw std::invalid_argument("workers must be >= 0");
  }
  core_free_.assign(static_cast<std::size_t>(options_.cores),
                    runtime::Time{0});
  worker_free_.assign(static_cast<std::size_t>(options_.workers),
                      runtime::Time{0});
}

runtime::TimerId Simulation::enqueue(runtime::Time when, Task task,
                                     bool job) {
  const runtime::TimerId id = next_id_++;
  const auto it = queue_.emplace(std::max(when, now_),
                                 Event{id, std::move(task), job});
  by_id_.emplace(id, it);
  return id;
}

runtime::TimerId Simulation::schedule_at(runtime::Time when, Task task) {
  return enqueue(when, std::move(task), /*job=*/false);
}

bool Simulation::submit(Job job) {
  // With no modeled workers the job is an ordinary event on the loop
  // core — the degenerate (inline) engine the single-core figures use.
  enqueue(now_, std::move(job), /*job=*/options_.workers > 0);
  return true;
}

void Simulation::cancel(runtime::TimerId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  queue_.erase(it->second);
  by_id_.erase(it);
}

void Simulation::consume(runtime::Duration cost) {
  if (cost <= runtime::Duration::zero()) return;
  accrue_busy(now_, cost);
  now_ += cost;
}

void Simulation::wait_external(runtime::Duration wait) {
  if (wait <= runtime::Duration::zero()) return;
  now_ += wait;
}

void Simulation::accrue_busy(runtime::Time from, runtime::Duration amount) {
  busy_ += amount;
  // Attribute busy time to sample windows, splitting across boundaries.
  const auto window = options_.sample_window;
  runtime::Time cursor = from;
  runtime::Duration remaining = amount;
  while (remaining > runtime::Duration::zero()) {
    const auto index = static_cast<std::size_t>(cursor / window);
    if (window_busy_seconds_.size() <= index) {
      window_busy_seconds_.resize(index + 1, 0.0);
    }
    const runtime::Time window_end = window * static_cast<long>(index + 1);
    const runtime::Duration in_window =
        std::min(remaining, window_end - cursor);
    window_busy_seconds_[index] +=
        std::chrono::duration<double>(in_window).count();
    cursor += in_window;
    remaining -= in_window;
  }
}

std::size_t Simulation::run_until(runtime::Time until) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const runtime::Time due = queue_.begin()->first;
    if (due > until) break;
    auto node = queue_.extract(queue_.begin());
    Event event = std::move(node.mapped());
    by_id_.erase(event.id);

    // The callback starts when both its due time has passed and a core
    // of its lane is free (FIFO dispatch over due events): pool jobs go
    // to the earliest free worker core, timers to a loop core.
    auto& lane = event.job ? worker_free_ : core_free_;
    auto free_core = std::min_element(lane.begin(), lane.end());
    const runtime::Time start = std::max(due, *free_core);
    if (start > until) {
      // Would start beyond the horizon; push it back and stop.
      const auto it = queue_.emplace(due, std::move(event));
      by_id_.emplace(it->second.id, it);
      break;
    }
    now_ = start;
    in_callback_ = true;
    consume(options_.dispatch_overhead);
    try {
      event.task();
    } catch (...) {
      // Leave the simulation re-usable after a throwing callback (the
      // crash harness injects sim::CrashInjected mid-run and then keeps
      // driving the same Simulation with a fresh engine).
      in_callback_ = false;
      *free_core = now_;
      ++callbacks_run_;
      if (event.job) ++jobs_run_;
      throw;
    }
    in_callback_ = false;
    *free_core = now_;
    ++callbacks_run_;
    if (event.job) ++jobs_run_;
    ++executed;
  }
  if (queue_.empty() || queue_.begin()->first > until) {
    if (until != runtime::Time::max()) now_ = std::max(now_, until);
  }
  return executed;
}

std::vector<double> Simulation::utilization_samples() const {
  return utilization_samples(runtime::Time{0}, now_);
}

std::vector<double> Simulation::utilization_samples(runtime::Time from,
                                                    runtime::Time to) const {
  std::vector<double> out;
  const auto window = options_.sample_window;
  const double window_seconds = std::chrono::duration<double>(window).count();
  const double capacity =
      window_seconds * (options_.cores + options_.workers);
  if (to <= from || capacity <= 0.0) return out;
  const auto first = static_cast<std::size_t>(from / window);
  const auto last =
      static_cast<std::size_t>((to - runtime::Duration{1}) / window);
  for (std::size_t i = first; i <= last; ++i) {
    const double busy =
        i < window_busy_seconds_.size() ? window_busy_seconds_[i] : 0.0;
    out.push_back(std::clamp(busy / capacity, 0.0, 1.0));
  }
  return out;
}

}  // namespace bifrost::sim
