// Discrete-event simulation with a CPU queue model. Substitutes the
// single-core cloud VM of the paper's engine-scale experiments
// (§5.2, Figures 7-10): the engine's own strategy-enactment code runs
// unmodified against this Scheduler; the simulated quantities are
// exactly the ones the paper measures — CPU utilization over time and
// the delay introduced when timer callbacks queue up behind a busy core.
//
// Model: timers fire at their due time but their callbacks only *start*
// when a core is free (FIFO over due events). While a callback runs,
// consume() advances the virtual clock by the modeled CPU cost of the
// work it performs (metric query evaluation, proxy updates, status
// bookkeeping). now() observed inside a callback therefore includes all
// queueing + processing delay that accumulated — which is what produces
// the enactment delays of Figures 8 and 10, since the engine re-arms
// check timers relative to completion time.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "runtime/scheduler.hpp"

namespace bifrost::sim {

class Simulation final : public runtime::Scheduler {
 public:
  struct Options {
    int cores = 1;
    /// Fixed dispatch overhead added to every callback (event-loop /
    /// libuv bookkeeping in the prototype being modeled).
    runtime::Duration dispatch_overhead = std::chrono::microseconds(50);
    /// Width of a utilization sample window (cAdvisor-style sampling).
    runtime::Duration sample_window = std::chrono::seconds(1);
  };

  explicit Simulation(Options options);
  Simulation() : Simulation(Options{}) {}

  // Scheduler interface -----------------------------------------------------
  [[nodiscard]] runtime::Time now() const override { return now_; }
  runtime::TimerId schedule_at(runtime::Time when, Task task) override;
  void cancel(runtime::TimerId id) override;

  // CPU model ---------------------------------------------------------------

  /// Called from inside a running callback: models `cost` of CPU work,
  /// advancing virtual time and accruing busy time.
  void consume(runtime::Duration cost);

  /// Called from inside a running callback: models blocking on an
  /// external resource (a metrics provider answering a query, a proxy
  /// acking a config push). Virtual time advances and subsequent
  /// callbacks are delayed — the run-to-completion engine cannot make
  /// progress — but the engine core does NOT accrue busy time. This is
  /// what lets the reproduction show large enactment delays at moderate
  /// engine CPU utilization, as the paper observed.
  void wait_external(runtime::Duration wait);

  // Execution ---------------------------------------------------------------

  /// Runs events until the queue is empty or `until` is reached.
  /// Returns the number of callbacks executed.
  std::size_t run_until(runtime::Time until);
  std::size_t run_all() { return run_until(runtime::Time::max()); }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  // Measurements ------------------------------------------------------------

  [[nodiscard]] runtime::Duration busy_time() const { return busy_; }

  /// Utilization (0..1) per sample window from t=0 to now. Windows in
  /// which the core was never busy report 0.
  [[nodiscard]] std::vector<double> utilization_samples() const;

  /// Utilization samples restricted to [from, to).
  [[nodiscard]] std::vector<double> utilization_samples(
      runtime::Time from, runtime::Time to) const;

  [[nodiscard]] std::uint64_t callbacks_run() const { return callbacks_run_; }

 private:
  void accrue_busy(runtime::Time from, runtime::Duration amount);

  Options options_;
  runtime::Time now_{0};
  /// Per-core time at which the core becomes free.
  std::vector<runtime::Time> core_free_;
  std::multimap<runtime::Time, std::pair<runtime::TimerId, Task>> queue_;
  std::unordered_set<runtime::TimerId> cancelled_;
  runtime::TimerId next_id_ = 1;
  runtime::Duration busy_{0};
  std::vector<double> window_busy_seconds_;  // indexed by window number
  std::uint64_t callbacks_run_ = 0;
  bool in_callback_ = false;
};

}  // namespace bifrost::sim
