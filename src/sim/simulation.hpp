// Discrete-event simulation with a CPU queue model. Substitutes the
// cloud VM of the paper's engine-scale experiments (§5.2, Figures 7-10):
// the engine's own strategy-enactment code runs unmodified against this
// Scheduler; the simulated quantities are exactly the ones the paper
// measures — CPU utilization over time and the delay introduced when
// timer callbacks queue up behind a busy core.
//
// Model: timers fire at their due time but their callbacks only *start*
// when a loop core is free (FIFO over due events). While a callback
// runs, consume() advances the virtual clock by the modeled CPU cost of
// the work it performs (metric query evaluation, proxy updates, status
// bookkeeping). now() observed inside a callback therefore includes all
// queueing + processing delay that accumulated — which is what produces
// the enactment delays of Figures 8 and 10, since the engine re-arms
// check timers relative to completion time.
//
// Worker cores (the parallel check scheduler's model): the Simulation
// also implements runtime::Executor. Jobs submitted through it start
// when the earliest of `workers` dedicated worker cores is free, while
// plain timers stay serialized on the loop core(s) — mirroring the real
// engine, where the automaton step runs single-threaded on the
// EventLoop and check evaluations run on a WorkStealingPool. With
// workers == 0 a submitted job degenerates to an ordinary event on the
// loop core (the inline, pool-less engine). Everything stays
// deterministic: one OS thread, dispatch ordered by due time then
// insertion order.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/scheduler.hpp"

namespace bifrost::sim {

class Simulation final : public runtime::Scheduler,
                         public runtime::Executor {
 public:
  struct Options {
    /// Loop cores running timer callbacks (the paper's engine VM).
    int cores = 1;
    /// Worker cores running submitted jobs (the modeled check pool);
    /// 0 = no pool, jobs run as ordinary events on the loop cores.
    int workers = 0;
    /// Fixed dispatch overhead added to every callback (event-loop /
    /// libuv bookkeeping in the prototype being modeled).
    runtime::Duration dispatch_overhead = std::chrono::microseconds(50);
    /// Width of a utilization sample window (cAdvisor-style sampling).
    runtime::Duration sample_window = std::chrono::seconds(1);
  };

  explicit Simulation(Options options);
  Simulation() : Simulation(Options{}) {}

  // Scheduler interface -----------------------------------------------------
  [[nodiscard]] runtime::Time now() const override { return now_; }
  runtime::TimerId schedule_at(runtime::Time when, Task task) override;
  /// Erases the pending event immediately (fired/unknown ids no-op and
  /// hold no memory — same contract as EventLoop::cancel).
  void cancel(runtime::TimerId id) override;

  // Executor interface ------------------------------------------------------

  /// Enqueues `job` to start now on the earliest free worker core.
  /// Never refuses (the simulation has no shutdown edge).
  bool submit(Job job) override;

  // CPU model ---------------------------------------------------------------

  /// Called from inside a running callback: models `cost` of CPU work,
  /// advancing virtual time and accruing busy time.
  void consume(runtime::Duration cost);

  /// Called from inside a running callback: models blocking on an
  /// external resource (a metrics provider answering a query, a proxy
  /// acking a config push). Virtual time advances and the occupied core
  /// cannot start other work — the run-to-completion engine (or the
  /// blocked pool worker) cannot make progress — but no busy time is
  /// accrued. This is what lets the reproduction show large enactment
  /// delays at moderate engine CPU utilization, as the paper observed.
  void wait_external(runtime::Duration wait);

  // Execution ---------------------------------------------------------------

  /// Runs events until the queue is empty or `until` is reached.
  /// Returns the number of callbacks executed.
  std::size_t run_until(runtime::Time until);
  std::size_t run_all() { return run_until(runtime::Time::max()); }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  // Measurements ------------------------------------------------------------

  [[nodiscard]] runtime::Duration busy_time() const { return busy_; }

  /// Utilization (0..1) per sample window from t=0 to now, over the
  /// combined capacity of loop + worker cores. Windows in which no core
  /// was ever busy report 0.
  [[nodiscard]] std::vector<double> utilization_samples() const;

  /// Utilization samples restricted to [from, to).
  [[nodiscard]] std::vector<double> utilization_samples(
      runtime::Time from, runtime::Time to) const;

  [[nodiscard]] std::uint64_t callbacks_run() const { return callbacks_run_; }
  /// Callbacks that ran as pool jobs on a worker core.
  [[nodiscard]] std::uint64_t jobs_run() const { return jobs_run_; }

 private:
  struct Event {
    runtime::TimerId id = runtime::kInvalidTimer;
    Task task;
    bool job = false;  ///< dispatch to a worker core instead of the loop
  };
  using Queue = std::multimap<runtime::Time, Event>;

  runtime::TimerId enqueue(runtime::Time when, Task task, bool job);
  void accrue_busy(runtime::Time from, runtime::Duration amount);

  Options options_;
  runtime::Time now_{0};
  /// Per-core time at which each loop core becomes free.
  std::vector<runtime::Time> core_free_;
  /// Per-core time at which each pool worker core becomes free.
  std::vector<runtime::Time> worker_free_;
  Queue queue_;
  std::unordered_map<runtime::TimerId, Queue::iterator> by_id_;
  runtime::TimerId next_id_ = 1;
  runtime::Duration busy_{0};
  std::vector<double> window_busy_seconds_;  // indexed by window number
  std::uint64_t callbacks_run_ = 0;
  std::uint64_t jobs_run_ = 0;
  bool in_callback_ = false;
};

}  // namespace bifrost::sim
