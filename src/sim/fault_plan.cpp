#include "sim/fault_plan.hpp"

#include <chrono>

namespace bifrost::sim {

FaultPlan::Outcome FaultPlan::decide(Target target, const std::string& name,
                                     runtime::Time now) {
  Outcome outcome;
  if (target == Target::kProxy || target == Target::kRegion) {
    // Region pushes count against the same apply counter, so
    // crash_on_apply can land the engine between two region acks of
    // one fleet push.
    ++proxy_calls_;
    if (crash_on_apply_ != 0 && proxy_calls_ >= crash_on_apply_) {
      crash_on_apply_ = 0;
      outcome.crash = true;
      outcome.reason = "crash injected during proxy apply to '" + name + "'";
      return outcome;
    }
  }
  // kLatency windows overlay every edge: matching calls get extra
  // deterministic latency on top of whatever else the plan decides
  // (no RNG draw consumed, so replays stay bit-identical).
  for (const Window& window : windows_) {
    if (window.target != Target::kLatency) continue;
    if (!window.name.empty() && window.name != name) continue;
    if (now < window.from || now >= window.to) continue;
    ++injected_spikes_;
    outcome.extra_latency += window.latency;
  }
  if (target == Target::kLatency) return outcome;

  for (const Window& window : windows_) {
    if (window.target != target) continue;
    if (!window.name.empty() && window.name != name) continue;
    if (now < window.from || now >= window.to) continue;
    ++injected_errors_;
    outcome.error = true;
    outcome.reason =
        "injected outage of '" + name + "' (window " +
        std::to_string(std::chrono::duration<double>(window.from).count()) +
        "s.." +
        (window.to == runtime::Time::max()
             ? std::string("inf")
             : std::to_string(
                   std::chrono::duration<double>(window.to).count()) + "s") +
        ")";
    return outcome;
  }

  // Region pushes share the proxy edge's probabilistic spec: a region
  // proxy is just one more proxy to the engine.
  const Spec& spec = target == Target::kMetrics ? metrics_
                     : target == Target::kProxy || target == Target::kRegion
                         ? proxy_
                         : backend_;
  if (spec.latency_spike_probability > 0.0 &&
      rng_.bernoulli(spec.latency_spike_probability)) {
    ++injected_spikes_;
    outcome.extra_latency = spec.latency_spike;
  }
  if (spec.error_probability > 0.0 && rng_.bernoulli(spec.error_probability)) {
    ++injected_errors_;
    outcome.error = true;
    outcome.reason = "injected fault calling '" + name + "'";
  }
  return outcome;
}

util::Result<void> FaultPlan::validate_against(
    const core::StrategyDef& def) const {
  using R = util::Result<void>;
  for (const Window& window : windows_) {
    if (window.name.empty()) continue;  // wildcard: matches any target
    if (window.target == Target::kLatency) {
      // A latency overlay may name any edge: a deployed version, a
      // service (proxy edge), a region, or a provider host.
      bool found = def.find_service(window.name) != nullptr;
      for (const core::ServiceDef& service : def.services) {
        found |= service.find_version(window.name) != nullptr;
        found |= service.find_region(window.name) != nullptr;
      }
      for (const auto& [provider_name, provider] : def.providers) {
        found |= provider.host == window.name;
      }
      if (!found) {
        return R::error(
            "latency window targets unknown name '" + window.name +
            "': strategy '" + def.name +
            "' has no such version, service, region, or provider host "
            "(a misspelled name would never fire)");
      }
      continue;
    }
    if (window.target == Target::kRegion) {
      bool found = false;
      for (const core::ServiceDef& service : def.services) {
        found |= service.find_region(window.name) != nullptr;
      }
      if (!found) {
        std::string known;
        for (const core::ServiceDef& service : def.services) {
          for (const core::RegionDef& region : service.regions) {
            if (!known.empty()) known += ", ";
            known += "'" + region.name + "'";
          }
        }
        return R::error(
            "fault window targets unknown region '" + window.name +
            "': strategy '" + def.name + "' declares " +
            (known.empty() ? std::string("no regions") : known) +
            " (a misspelled name would never fire)");
      }
      continue;
    }
    if (window.target == Target::kBackend) {
      bool found = false;
      for (const core::ServiceDef& service : def.services) {
        found |= service.find_version(window.name) != nullptr;
      }
      if (!found) {
        std::string known;
        for (const core::ServiceDef& service : def.services) {
          for (const core::VersionDef& version : service.versions) {
            if (!known.empty()) known += ", ";
            known += "'" + version.version + "'";
          }
        }
        return R::error(
            "fault window targets unknown backend version '" + window.name +
            "': strategy '" + def.name + "' deploys " +
            (known.empty() ? std::string("no versions") : known) +
            " (a misspelled name would never fire)");
      }
      continue;
    }
    if (window.target == Target::kProxy) {
      if (def.find_service(window.name) == nullptr) {
        std::string known;
        for (const core::ServiceDef& service : def.services) {
          if (!known.empty()) known += ", ";
          known += "'" + service.name + "'";
        }
        return R::error(
            "fault window targets unknown service '" + window.name +
            "': strategy '" + def.name + "' has " +
            (known.empty() ? std::string("no services") : known) +
            " (a misspelled name would never fire)");
      }
    } else {
      bool found = false;
      for (const auto& [provider_name, provider] : def.providers) {
        found |= provider.host == window.name;
      }
      if (!found) {
        std::string known;
        for (const auto& [provider_name, provider] : def.providers) {
          if (!known.empty()) known += ", ";
          known += "'" + provider.host + "'";
        }
        return R::error(
            "fault window targets unknown provider host '" + window.name +
            "': strategy '" + def.name + "' queries " +
            (known.empty() ? std::string("no providers") : known) +
            " (a misspelled name would never fire)");
      }
    }
  }
  return {};
}

}  // namespace bifrost::sim
