#include "sim/fault_plan.hpp"

#include <chrono>

namespace bifrost::sim {

FaultPlan::Outcome FaultPlan::decide(Target target, const std::string& name,
                                     runtime::Time now) {
  Outcome outcome;
  for (const Window& window : windows_) {
    if (window.target != target) continue;
    if (!window.name.empty() && window.name != name) continue;
    if (now < window.from || now >= window.to) continue;
    ++injected_errors_;
    outcome.error = true;
    outcome.reason =
        "injected outage of '" + name + "' (window " +
        std::to_string(std::chrono::duration<double>(window.from).count()) +
        "s.." +
        (window.to == runtime::Time::max()
             ? std::string("inf")
             : std::to_string(
                   std::chrono::duration<double>(window.to).count()) + "s") +
        ")";
    return outcome;
  }

  const Spec& spec = target == Target::kMetrics ? metrics_ : proxy_;
  if (spec.latency_spike_probability > 0.0 &&
      rng_.bernoulli(spec.latency_spike_probability)) {
    ++injected_spikes_;
    outcome.extra_latency = spec.latency_spike;
  }
  if (spec.error_probability > 0.0 && rng_.bernoulli(spec.error_probability)) {
    ++injected_errors_;
    outcome.error = true;
    outcome.reason = "injected fault calling '" + name + "'";
  }
  return outcome;
}

}  // namespace bifrost::sim
