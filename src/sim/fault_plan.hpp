// Deterministic fault injection for the simulated engine environment.
// A FaultPlan describes when the outside world misbehaves — hard-down
// error windows in virtual time, a per-call error probability, and
// latency spikes — and SimMetricsClient / SimProxyController consult it
// on every call. All randomness comes from one seeded RNG, so a given
// (plan, strategy, costs) triple replays the exact same failure
// sequence on every run: the failure-matrix tests in
// tests/resilience_test.cpp assert event streams down to exact virtual
// timestamps.
// Crash injection: crash_after_record(n) arms a simulated engine crash
// at a journal record boundary (thrown as CrashInjected by a
// CrashableJournal wrapping the engine's journal), and crash_on_apply(n)
// kills the engine mid-proxy-update — after the proxy installed the
// config but before the engine could journal the ack. The recovery
// crash-matrix tests drive both through every boundary of a strategy.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/journal.hpp"
#include "runtime/scheduler.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace bifrost::sim {

/// Thrown to simulate the engine process dying at a fault-plan-chosen
/// point. Propagates out of Simulation::run_until (which stays
/// re-usable); the harness then destroys the engine object — the moral
/// equivalent of SIGKILL — and constructs a fresh one that recovers
/// from the journal.
struct CrashInjected : std::runtime_error {
  explicit CrashInjected(const std::string& what)
      : std::runtime_error(what) {}
};

class FaultPlan {
 public:
  /// kMetrics/kProxy fault the engine's outbound edges; kBackend faults
  /// a deployed service version itself (the test backends behind a real
  /// proxy consult it per request), driving the proxy's outlier-ejection
  /// machinery deterministically. kLatency is a cross-cutting overlay:
  /// its windows add deterministic extra latency to matching calls of
  /// ANY edge (by name), and can be consulted directly — a real
  /// BifrostProxy's latency-injection hook calls
  /// decide(kLatency, version, now) per request to slow a live backend
  /// without erroring it. kRegion partitions one region of a federated
  /// service: pushes (and fetches) against that region's proxy fail
  /// while the window is open, leaving the rest of the fleet reachable.
  enum class Target { kMetrics, kProxy, kBackend, kLatency, kRegion };

  /// Probabilistic faults for one edge, evaluated per call.
  struct Spec {
    double error_probability = 0.0;          ///< call fails outright
    double latency_spike_probability = 0.0;  ///< call takes extra time
    runtime::Duration latency_spike{0};      ///< extra external wait
  };

  /// Hard-down window in virtual time: every matching call within
  /// [from, to) fails deterministically (no RNG draw consumed).
  /// kLatency windows don't fail calls — they add `latency` instead.
  struct Window {
    Target target = Target::kMetrics;
    runtime::Time from{0};
    runtime::Time to = runtime::Time::max();
    /// Provider host (metrics), service name (proxy), version name
    /// (backend/latency), or region name (region) the window applies
    /// to; empty matches every target of the edge.
    std::string name;
    /// Extra latency injected while a kLatency window is active
    /// (ignored for error windows).
    runtime::Duration latency{0};
  };

  /// What the plan decided for one call.
  struct Outcome {
    bool error = false;
    /// The engine dies during this call: the callee completes its side
    /// effect, then throws CrashInjected instead of acking.
    bool crash = false;
    runtime::Duration extra_latency{0};
    std::string reason;
  };

  explicit FaultPlan(std::uint64_t seed = 0) : rng_(seed) {}

  Spec& metrics() { return metrics_; }
  Spec& proxy() { return proxy_; }
  Spec& backend() { return backend_; }
  void add_window(Window window) { windows_.push_back(std::move(window)); }
  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }

  /// Arms a one-shot crash at the moment the journal's cumulative
  /// record count reaches `n` (1-based): record n is durably written,
  /// nothing after it. Consumed by CrashableJournal::append.
  void crash_after_record(std::uint64_t n) { crash_at_record_ = n; }
  /// One-shot: true exactly when `written` has reached the armed
  /// boundary; disarms so the restarted engine doesn't crash again.
  bool take_crash_at_record(std::uint64_t written) {
    if (crash_at_record_ == 0 || written < crash_at_record_) return false;
    crash_at_record_ = 0;
    return true;
  }

  /// Arms a one-shot crash during the `nth` proxy apply from now
  /// (1-based, counted across decide() calls with Target::kProxy).
  void crash_on_apply(std::uint64_t nth = 1) {
    crash_on_apply_ = proxy_calls_ + nth;
  }

  /// Validates the plan against the strategy it will be injected into:
  /// every named window must reference a service (proxy faults), a
  /// provider host (metrics faults), or a declared region (region
  /// faults) that the strategy actually uses — a misspelled name would
  /// otherwise silently never fire.
  [[nodiscard]] util::Result<void> validate_against(
      const core::StrategyDef& def) const;

  /// Decides the fate of one call against `name` at virtual time `now`.
  /// Windows are checked first (deterministic, no RNG); otherwise the
  /// edge's probabilistic spec draws from the plan's RNG in a fixed
  /// order (latency spike, then error), keeping replays bit-identical.
  Outcome decide(Target target, const std::string& name, runtime::Time now);

  [[nodiscard]] std::uint64_t injected_errors() const {
    return injected_errors_;
  }
  [[nodiscard]] std::uint64_t injected_spikes() const {
    return injected_spikes_;
  }

 private:
  util::Rng rng_;
  Spec metrics_;
  Spec proxy_;
  Spec backend_;
  std::vector<Window> windows_;
  std::uint64_t injected_errors_ = 0;
  std::uint64_t injected_spikes_ = 0;
  std::uint64_t crash_at_record_ = 0;  ///< 0 = disarmed
  std::uint64_t crash_on_apply_ = 0;   ///< absolute proxy-call index, 0 = off
  std::uint64_t proxy_calls_ = 0;
};

/// Journal decorator that injects CrashInjected at the record boundary
/// armed via FaultPlan::crash_after_record. Wraps the journal that
/// plays "the disk" (usually a MemoryJournal that outlives simulated
/// engine incarnations); the boundary is counted against the inner
/// journal's cumulative record count, so it is stable across restarts.
class CrashableJournal final : public engine::Journal {
 public:
  CrashableJournal(engine::Journal& inner, FaultPlan& plan)
      : inner_(inner), plan_(plan) {}

  util::Result<void> append(engine::RecordType type,
                            json::Value data) override {
    auto result = inner_.append(type, std::move(data));
    if (plan_.take_crash_at_record(inner_.records_written())) {
      throw CrashInjected("crash injected after journal record " +
                          std::to_string(inner_.records_written()));
    }
    return result;
  }
  util::Result<void> sync() override { return inner_.sync(); }
  [[nodiscard]] std::uint64_t records_written() const override {
    return inner_.records_written();
  }

 private:
  engine::Journal& inner_;
  FaultPlan& plan_;
};

}  // namespace bifrost::sim
