// Deterministic fault injection for the simulated engine environment.
// A FaultPlan describes when the outside world misbehaves — hard-down
// error windows in virtual time, a per-call error probability, and
// latency spikes — and SimMetricsClient / SimProxyController consult it
// on every call. All randomness comes from one seeded RNG, so a given
// (plan, strategy, costs) triple replays the exact same failure
// sequence on every run: the failure-matrix tests in
// tests/resilience_test.cpp assert event streams down to exact virtual
// timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "util/rng.hpp"

namespace bifrost::sim {

class FaultPlan {
 public:
  enum class Target { kMetrics, kProxy };

  /// Probabilistic faults for one edge, evaluated per call.
  struct Spec {
    double error_probability = 0.0;          ///< call fails outright
    double latency_spike_probability = 0.0;  ///< call takes extra time
    runtime::Duration latency_spike{0};      ///< extra external wait
  };

  /// Hard-down window in virtual time: every matching call within
  /// [from, to) fails deterministically (no RNG draw consumed).
  struct Window {
    Target target = Target::kMetrics;
    runtime::Time from{0};
    runtime::Time to = runtime::Time::max();
    /// Provider host (metrics) or service name (proxy) the window
    /// applies to; empty matches every target of the edge.
    std::string name;
  };

  /// What the plan decided for one call.
  struct Outcome {
    bool error = false;
    runtime::Duration extra_latency{0};
    std::string reason;
  };

  explicit FaultPlan(std::uint64_t seed = 0) : rng_(seed) {}

  Spec& metrics() { return metrics_; }
  Spec& proxy() { return proxy_; }
  void add_window(Window window) { windows_.push_back(std::move(window)); }

  /// Decides the fate of one call against `name` at virtual time `now`.
  /// Windows are checked first (deterministic, no RNG); otherwise the
  /// edge's probabilistic spec draws from the plan's RNG in a fixed
  /// order (latency spike, then error), keeping replays bit-identical.
  Outcome decide(Target target, const std::string& name, runtime::Time now);

  [[nodiscard]] std::uint64_t injected_errors() const {
    return injected_errors_;
  }
  [[nodiscard]] std::uint64_t injected_spikes() const {
    return injected_spikes_;
  }

 private:
  util::Rng rng_;
  Spec metrics_;
  Spec proxy_;
  std::vector<Window> windows_;
  std::uint64_t injected_errors_ = 0;
  std::uint64_t injected_spikes_ = 0;
};

}  // namespace bifrost::sim
