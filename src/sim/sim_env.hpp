// Simulated engine environment: MetricsClient / ProxyController
// implementations that charge calibrated CPU costs to the Simulation and
// return synthetic data. Costs default to values calibrated against the
// paper's published curves (see bench/bench_parallel_*.cpp and
// EXPERIMENTS.md for the calibration notes).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "engine/interfaces.hpp"
#include "engine/resilience.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulation.hpp"

namespace bifrost::sim {

/// Synthetic metric source: maps (query, virtual time seconds) to a
/// value; return nullopt for "no data".
using MetricFn =
    std::function<std::optional<double>(const std::string&, double)>;

class SimMetricsClient final : public engine::MetricsClient {
 public:
  /// Cost of one metric query, split into engine CPU (request dispatch,
  /// JSON parse, validation) and external wait (the provider answering;
  /// the run-to-completion engine is blocked but its core is idle).
  struct QueryCost {
    runtime::Duration engine = std::chrono::milliseconds(3);
    runtime::Duration wait = std::chrono::milliseconds(9);
  };

  struct Costs {
    QueryCost default_query;
    /// Per-provider overrides keyed by the provider's symbolic host
    /// (e.g. availability probes vs Prometheus queries, §5.2.2).
    std::map<std::string, QueryCost> per_provider;
  };

  SimMetricsClient(Simulation& sim, MetricFn source, Costs costs);
  SimMetricsClient(Simulation& sim, MetricFn source)
      : SimMetricsClient(sim, std::move(source), Costs{}) {}

  util::Result<std::optional<double>> query(
      const core::ProviderConfig& provider, const std::string& query) override;

  /// Non-owning: faults from `plan` (Target::kMetrics, keyed by the
  /// provider's host) are injected into every query. Pass nullptr to
  /// disable.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  [[nodiscard]] std::uint64_t queries() const { return queries_; }

 private:
  Simulation& sim_;
  MetricFn source_;
  Costs costs_;
  FaultPlan* fault_plan_ = nullptr;
  std::uint64_t queries_ = 0;
};

class SimProxyController final : public engine::ProxyController {
 public:
  struct Costs {
    /// CPU consumed per proxy reconfiguration (engine-side serialization
    /// and HTTP PUT issuance) plus the wait for the proxy's ack.
    runtime::Duration per_update = std::chrono::milliseconds(3);
    runtime::Duration update_wait = std::chrono::milliseconds(4);
  };

  SimProxyController(Simulation& sim, Costs costs);
  explicit SimProxyController(Simulation& sim)
      : SimProxyController(sim, Costs{}) {}

  util::Result<void> apply(const core::ServiceDef& service,
                           const proxy::ProxyConfig& config) override;

  /// One region's proxy of a federated service; state is keyed
  /// "service/region" so every region keeps its own installed config
  /// and epoch guard. Faults come from Target::kRegion windows (keyed
  /// by region name — a partition of one region) on top of the shared
  /// proxy-edge probabilistic spec.
  util::Result<void> apply_region(const core::ServiceDef& service,
                                  const core::RegionDef& region,
                                  const proxy::ProxyConfig& config) override;

  /// Reads back the per-service installed config + epoch, like a real
  /// proxy's GET /admin/config. Charges no simulation cost (recovery
  /// reconciliation runs outside the simulated engine's callbacks).
  /// Errors when no config was ever applied for the service.
  util::Result<engine::ProxyStateView> fetch(
      const core::ServiceDef& service) override;

  /// Region read-back ("service/region" key). A region inside an open
  /// Target::kRegion window is unreachable and errors — reconcile then
  /// falls back to re-pushing once the partition heals.
  util::Result<engine::ProxyStateView> fetch_region(
      const core::ServiceDef& service, const core::RegionDef& region) override;

  /// Non-owning: faults from `plan` (Target::kProxy, keyed by the
  /// service name) are injected into every update. A crash outcome
  /// installs the config and then throws CrashInjected — the proxy got
  /// the update, the engine died before seeing the ack.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  [[nodiscard]] std::uint64_t updates() const { return updates_; }
  [[nodiscard]] const proxy::ProxyConfig& last_config() const {
    return last_config_;
  }
  /// Duplicate-epoch applies deduplicated by the per-service guard.
  [[nodiscard]] std::uint64_t duplicate_epochs() const {
    return duplicate_epochs_;
  }
  /// Installed per-proxy state, keyed by service name — or
  /// "service/region" for federated pushes (what a fleet of real
  /// proxies would each persist).
  [[nodiscard]] const std::map<std::string, engine::ProxyStateView>& states()
      const {
    return states_;
  }
  /// Installed state of one region of a federated service, or null if
  /// that region's proxy never accepted a config.
  [[nodiscard]] const engine::ProxyStateView* region_state(
      const std::string& service, const std::string& region) const {
    const auto it = states_.find(service + "/" + region);
    return it != states_.end() ? &it->second : nullptr;
  }

 private:
  /// Installs `config` for `service` honoring the epoch guard.
  void install(const std::string& service, const proxy::ProxyConfig& config);

  Simulation& sim_;
  Costs costs_;
  FaultPlan* fault_plan_ = nullptr;
  std::uint64_t updates_ = 0;
  std::uint64_t duplicate_epochs_ = 0;
  proxy::ProxyConfig last_config_;
  std::map<std::string, engine::ProxyStateView> states_;
};

/// SleepFn for the resilience decorators under simulation: backoff
/// blocks the run-to-completion engine as an external wait (virtual
/// time advances, the engine core stays idle).
engine::SleepFn external_sleeper(Simulation& sim);

/// Status listener that charges a small CPU cost per emitted event
/// (status propagation to dashboard/CLI in the modeled prototype) and
/// forwards to an optional inner listener.
engine::StatusListener charged_listener(Simulation& sim,
                                        runtime::Duration per_event,
                                        engine::StatusListener inner = {});

/// A MetricFn whose values always satisfy "healthy" checks: returns 0
/// for error-style queries and `healthy_value` otherwise.
MetricFn always_healthy(double healthy_value = 0.0);

}  // namespace bifrost::sim
