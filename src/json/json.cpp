#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace bifrost::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<Value> parse_document() {
    skip_ws();
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  util::Result<Value> fail(const std::string& what) {
    return util::Result<Value>::error("json: " + what + " at offset " +
                                      std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  util::Result<Value> parse_value() {
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
        if (consume_literal("true")) return Value(true);
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        return fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  util::Result<Value> parse_object() {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      auto key = parse_string_raw();
      if (!key.ok()) return util::Result<Value>::error(key.error_message());
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      obj[key.value()] = std::move(value).value();
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(std::move(obj));
      return fail("expected ',' or '}' in object");
    }
  }

  util::Result<Value> parse_array() {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      arr.push_back(std::move(value).value());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(std::move(arr));
      return fail("expected ',' or ']' in array");
    }
  }

  util::Result<Value> parse_string_value() {
    auto s = parse_string_raw();
    if (!s.ok()) return util::Result<Value>::error(s.error_message());
    return Value(std::move(s).value());
  }

  util::Result<std::string> parse_string_raw() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (eof()) {
        return util::Result<std::string>::error("json: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) {
          return util::Result<std::string>::error("json: bad escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return util::Result<std::string>::error("json: bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return util::Result<std::string>::error(
                    "json: bad \\u escape digit");
              }
            }
            // UTF-8 encode the BMP code point (surrogates passed through).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return util::Result<std::string>::error("json: bad escape char");
        }
      } else {
        out += c;
      }
    }
  }

  util::Result<Value> parse_number() {
    const size_t start = pos_;
    if (consume('-')) {
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    return Value(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void append_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string Value::get_string(const std::string& key,
                              std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string escape_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Value::dump_into(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : std::string();
  const std::string pad_close =
      indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    out += escape_string(as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_into(out, indent, depth + 1);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      out += escape_string(key);
      out += indent > 0 ? ": " : ":";
      value.dump_into(out, indent, depth + 1);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += pad_close;
    out += '}';
  }
}

std::string Value::dump() const {
  std::string out;
  dump_into(out, 0, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_into(out, 2, 0);
  return out;
}

util::Result<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace bifrost::json
