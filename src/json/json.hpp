// Minimal JSON value / parser / serializer for the engine and metrics
// HTTP APIs. Full RFC 8259 input grammar except \u surrogate pairs are
// passed through unvalidated.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace bifrost::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps object keys ordered, which makes serialized output
/// deterministic — important for golden tests.
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(double d) : data_(d) {}                      // NOLINT
  Value(int i) : data_(static_cast<double>(i)) {}    // NOLINT
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}  // NOLINT
  Value(std::size_t i) : data_(static_cast<double>(i)) {}   // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Object o) : data_(std::move(o)) {}           // NOLINT

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(data_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(data_);
  }

  /// Typed accessors; throw std::bad_variant_access on type mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] double as_number() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(data_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(data_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(data_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(data_);
  }
  [[nodiscard]] Object& as_object() { return std::get<Object>(data_); }

  /// Object member lookup; returns nullptr if absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Convenience: member as string/number/bool with fallback.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback = "") const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& key,
                              bool fallback = false) const;

  /// Compact serialization (no whitespace).
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indent.
  [[nodiscard]] std::string dump_pretty() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  void dump_into(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
util::Result<Value> parse(std::string_view text);

/// Escapes a string into a JSON string literal (with quotes).
std::string escape_string(const std::string& s);

}  // namespace bifrost::json
