#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bifrost::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.sd = stddev(xs);
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  s.median = percentile(xs, 50.0);
  return s;
}

Boxplot boxplot(std::vector<double> xs) {
  if (xs.empty()) throw std::invalid_argument("boxplot of empty sample");
  std::sort(xs.begin(), xs.end());
  Boxplot b;
  b.min = xs.front();
  b.max = xs.back();
  b.q1 = percentile(xs, 25.0);
  b.median = percentile(xs, 50.0);
  b.q3 = percentile(xs, 75.0);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.max;
  b.whisker_hi = b.min;
  for (const double x : xs) {
    if (x >= lo_fence) {
      b.whisker_lo = std::min(b.whisker_lo, x);
      break;  // xs sorted: first in-fence value is the low whisker
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  for (const double x : xs) {
    if (x < lo_fence || x > hi_fence) ++b.outliers;
  }
  return b;
}

MovingAverage::MovingAverage(double window_seconds) : window_(window_seconds) {
  if (window_seconds <= 0.0) {
    throw std::invalid_argument("moving average window must be positive");
  }
}

void MovingAverage::add(double t_seconds, double value) {
  samples_.emplace_back(t_seconds, value);
}

double MovingAverage::at(double t_seconds) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : samples_) {
    if (t > t_seconds - window_ && t <= t_seconds) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<std::pair<double, double>> MovingAverage::series(
    double step) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || step <= 0.0) return out;
  auto [lo, hi] = std::minmax_element(
      samples_.begin(), samples_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (double t = lo->first; t <= hi->first + 1e-9; t += step) {
    out.emplace_back(t, at(t));
  }
  return out;
}

std::string sparkline(const std::vector<double>& xs) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (xs.empty()) return {};
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  const double span = *mx - *mn;
  std::string out;
  for (const double x : xs) {
    const int level =
        span <= 0.0
            ? 4
            : static_cast<int>(std::lround((x - *mn) / span * 8.0));
    out += kLevels[std::clamp(level, 0, 8)];
  }
  return out;
}

}  // namespace bifrost::util
