#include "util/uuid.hpp"

#include <array>
#include <cctype>
#include <random>

namespace bifrost::util {
namespace {

std::string format_uuid(std::uint64_t hi, std::uint64_t lo) {
  // Set version (4) and variant (10xx) bits per RFC 4122.
  hi = (hi & 0xffffffffffff0fffULL) | 0x0000000000004000ULL;
  lo = (lo & 0x3fffffffffffffffULL) | 0x8000000000000000ULL;

  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(36);
  const auto emit = [&](std::uint64_t v, int nibbles) {
    for (int i = nibbles - 1; i >= 0; --i) {
      out += kHex[(v >> (i * 4)) & 0xf];
    }
  };
  emit(hi >> 32, 8);
  out += '-';
  emit(hi >> 16, 4);
  out += '-';
  emit(hi, 4);
  out += '-';
  emit(lo >> 48, 4);
  out += '-';
  emit(lo, 12);
  return out;
}

}  // namespace

std::string uuid4() {
  thread_local std::mt19937_64 rng{std::random_device{}()};
  return format_uuid(rng(), rng());
}

std::string uuid4_from(std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  return format_uuid(rng(), rng());
}

bool is_uuid(const std::string& s) {
  if (s.size() != 36) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (s[i] != '-') return false;
    } else if (std::isxdigit(static_cast<unsigned char>(s[i])) == 0) {
      return false;
    }
  }
  return s[14] == '4';
}

}  // namespace bifrost::util
