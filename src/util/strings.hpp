#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bifrost::util {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on the first occurrence of `delim`; nullopt if absent.
std::optional<std::pair<std::string, std::string>> split_once(
    std::string_view s, char delim);

std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison (HTTP header names, etc.).
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict integer / double parsing: whole string must be consumed.
std::optional<long long> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Replaces all occurrences of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

}  // namespace bifrost::util
