#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace bifrost::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  if (header.empty()) throw std::invalid_argument("CSV header is empty");
  row(header);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument("CSV row width mismatch");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::row(const std::vector<double>& fields) {
  std::vector<std::string> s;
  s.reserve(fields.size());
  for (const double f : fields) {
    std::ostringstream os;
    os << f;
    s.push_back(os.str());
  }
  row(s);
}

}  // namespace bifrost::util
