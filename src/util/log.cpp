#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace bifrost::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& component,
         const std::string& message) {
  if (level < g_level.load()) return;
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%10lld.%03lld] %-5s %-12s %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace bifrost::util
