#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace bifrost::util {

/// Minimal CSV writer used by the bench harness to dump raw series next
/// to the formatted tables, so figures can be re-plotted externally.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O error.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void row(const std::vector<std::string>& fields);
  void row(const std::vector<double>& fields);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& field);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace bifrost::util
