#pragma once

#include <cstdint>
#include <random>

namespace bifrost::util {

/// Seedable RNG wrapper so traffic-split decisions, user selection, and
/// simulations are reproducible under test.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  Rng() : engine_(std::random_device{}()) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normally distributed value.
  double normal(double mean, double sd) {
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Deterministically derives a decorrelated per-stream seed from a base
/// seed (splitmix64 finalizer over golden-ratio-spaced increments).
/// Used to give each worker thread its own Rng from one configured
/// seed: stream = thread index.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace bifrost::util
