#pragma once

#include <cstdint>
#include <string>

namespace bifrost::util {

/// RFC 4122 version-4 UUID as a lowercase hex string
/// ("xxxxxxxx-xxxx-4xxx-yxxx-xxxxxxxxxxxx"). Used by the proxy to
/// re-identify clients for sticky sessions (paper §4.2.2).
std::string uuid4();

/// Deterministic variant for tests/simulation: derives the UUID from the
/// given seed so runs are reproducible.
std::string uuid4_from(std::uint64_t seed);

/// True if `s` is syntactically a v4 UUID as produced above.
bool is_uuid(const std::string& s);

}  // namespace bifrost::util
