// Descriptive statistics used by the benchmark harness (Table 1 rows,
// Figure 7/9 boxplots, Figure 8/10 mean +- sd series).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bifrost::util {

/// Summary statistics over a sample (Table 1 reports exactly these).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sd = 0.0;  ///< sample standard deviation (n-1 denominator)
  double median = 0.0;
};

/// Five-number summary plus 1.5*IQR whiskers, as drawn by the paper's
/// boxplot figures (Figs 7 and 9).
struct Boxplot {
  double min = 0.0;  ///< sample minimum
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;          ///< sample maximum
  double whisker_lo = 0.0;   ///< lowest sample >= q1 - 1.5*IQR
  double whisker_hi = 0.0;   ///< highest sample <= q3 + 1.5*IQR
  std::size_t outliers = 0;  ///< samples outside the whiskers
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);  ///< sample sd; 0 if n < 2

/// Linear-interpolated percentile, p in [0,100]. Throws on empty input.
double percentile(std::vector<double> xs, double p);

Summary summarize(const std::vector<double>& xs);
Boxplot boxplot(std::vector<double> xs);

/// Simple moving average over (time, value) samples with a fixed-width
/// trailing window; mirrors the 3-second window used for Figure 6.
class MovingAverage {
 public:
  explicit MovingAverage(double window_seconds);

  void add(double t_seconds, double value);

  /// Average of samples in (t - window, t]; 0 if none recorded yet.
  [[nodiscard]] double at(double t_seconds) const;

  /// Resamples the series every `step` seconds from first to last sample.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      double step) const;

 private:
  double window_;
  std::vector<std::pair<double, double>> samples_;  // sorted by insertion
};

/// Renders a fixed-width ASCII sparkline of a series (bench output).
std::string sparkline(const std::vector<double>& xs);

}  // namespace bifrost::util
