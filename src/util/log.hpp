#pragma once

#include <sstream>
#include <string>

namespace bifrost::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe line-oriented logging to stderr.
void log(LogLevel level, const std::string& component,
         const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const std::string& component, const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log(LogLevel::kDebug, component, os.str());
}

template <typename... Args>
void log_info(const std::string& component, const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log(LogLevel::kInfo, component, os.str());
}

template <typename... Args>
void log_warn(const std::string& component, const Args&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log(LogLevel::kWarn, component, os.str());
}

template <typename... Args>
void log_error(const std::string& component, const Args&... args) {
  std::ostringstream os;
  detail::format_into(os, args...);
  log(LogLevel::kError, component, os.str());
}

}  // namespace bifrost::util
