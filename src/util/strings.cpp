#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace bifrost::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<std::pair<std::string, std::string>> split_once(
    std::string_view s, char delim) {
  const size_t pos = s.find(delim);
  if (pos == std::string_view::npos) return std::nullopt;
  return std::pair{std::string(s.substr(0, pos)),
                   std::string(s.substr(pos + 1))};
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
    return std::tolower(static_cast<unsigned char>(x)) ==
           std::tolower(static_cast<unsigned char>(y));
  });
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is incomplete on some libstdc++ versions;
  // strtod on a NUL-terminated copy is portable and strict enough here.
  std::string copy(s);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return value;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace bifrost::util
