// Lightweight Result<T> for recoverable errors (parse failures, I/O on
// untrusted input). Unrecoverable logic errors still throw.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace bifrost::util {

/// A value-or-error sum type. The error is a human-readable message;
/// callers that need structured errors wrap their own enum in T.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}

  static Result error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Returns the contained value; throws if this holds an error.
  [[nodiscard]] T& value() & {
    ensure_ok();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    ensure_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    ensure_ok();
    return std::move(*value_);
  }

  [[nodiscard]] const std::string& error_message() const { return error_; }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Result() = default;
  void ensure_ok() const {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error_);
  }

  std::optional<T> value_;
  std::string error_;
};

/// Result<void>: success or an error message.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;

  static Result error(std::string message) {
    Result r;
    r.ok_ = false;
    r.error_ = std::move(message);
    return r;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  [[nodiscard]] const std::string& error_message() const { return error_; }

 private:
  bool ok_ = true;
  std::string error_;
};

}  // namespace bifrost::util
