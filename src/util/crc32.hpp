// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding journal record frames against torn or corrupted tails.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bifrost::util {

/// Incremental CRC-32: feed `crc32_update` the running value (start from
/// crc32_init()) and finish with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                         std::size_t size);
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

}  // namespace bifrost::util
