// Thin RAII layer over POSIX TCP sockets. Blocking I/O with per-socket
// timeouts; higher layers (HTTP server/client) provide concurrency.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace bifrost::net {

/// Move-only owner of a file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_.store(other.release(), std::memory_order_relaxed);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  [[nodiscard]] int get() const { return fd_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool valid() const { return get() >= 0; }
  int release() { return fd_.exchange(-1, std::memory_order_relaxed); }
  void reset();

 private:
  // Atomic so a server's stop() can close the listener while the dispatch
  // loop concurrently checks valid(); close/poll interleaving is handled by
  // the wake pipe, this only removes the word-level race on the descriptor.
  std::atomic<int> fd_{-1};
};

/// A connected TCP stream (blocking, with optional I/O timeouts).
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FdHandle fd) : fd_(std::move(fd)) {}

  /// Connects to host:port (IPv4 literal or resolvable name).
  static util::Result<TcpStream> connect(
      const std::string& host, std::uint16_t port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  [[nodiscard]] bool valid() const { return fd_.valid(); }

  /// Applies a receive+send timeout to subsequent operations.
  util::Result<void> set_io_timeout(std::chrono::milliseconds timeout);

  /// Disables Nagle's algorithm (latency-sensitive request/response).
  util::Result<void> set_no_delay(bool on);

  /// Reads up to `len` bytes. Returns 0 on orderly shutdown.
  util::Result<std::size_t> read_some(char* buf, std::size_t len);

  /// Writes the whole buffer (looping over partial writes).
  util::Result<void> write_all(const char* buf, std::size_t len);
  util::Result<void> write_all(const std::string& data) {
    return write_all(data.data(), data.size());
  }

  void close() { fd_.reset(); }

  /// Shuts down both directions without closing the descriptor; a
  /// blocked read on another thread returns immediately with EOF.
  void shutdown_both();

  /// Raw descriptor for poll()-style readiness watching. The stream
  /// retains ownership.
  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  FdHandle fd_;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens on loopback. Port 0 picks an ephemeral port.
  static util::Result<TcpListener> bind(std::uint16_t port,
                                        int backlog = 128);

  /// Like bind(), but sets SO_REUSEPORT before binding so several
  /// listeners (one per reactor worker) can share one port and let the
  /// kernel spread incoming connections across them.
  static util::Result<TcpListener> bind_reuseport(std::uint16_t port,
                                                  int backlog = 128);

  /// Blocks until a client connects. Transient per-connection failures
  /// (EINTR, ECONNABORTED, and friends) are retried internally; only
  /// listener-level errors surface — notably the listener being closed
  /// from another thread (used to stop accept loops).
  util::Result<TcpStream> accept();

  /// Switches the listening socket to non-blocking accepts (reactor
  /// accept loops drain with accept4 until EAGAIN).
  util::Result<void> set_non_blocking();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }

  /// Closing from another thread unblocks accept() with an error.
  void close();

 private:
  static util::Result<TcpListener> bind_impl(std::uint16_t port, int backlog,
                                             bool reuse_port);

  FdHandle fd_;
  std::uint16_t port_ = 0;
};

}  // namespace bifrost::net
