#include "net/reactor.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/tcp.hpp"
#include "util/log.hpp"

namespace bifrost::net {
namespace {

/// ConnId layout: top 16 bits = owning worker, low 48 bits = sequence.
constexpr int kWorkerShift = 48;
/// epoll user-data tags for the two non-connection descriptors.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventTag = 1;
constexpr std::uint64_t kFirstConnSeq = 2;
constexpr int kMaxIov = 64;

}  // namespace

struct Reactor::Conn {
  int fd = -1;
  ConnId id = 0;
  std::string in;
  std::deque<std::string> out;
  std::size_t out_bytes = 0;        ///< total unwritten bytes queued
  std::size_t out_front_offset = 0; ///< bytes of out.front() already sent
  bool suspended = false;
  bool close_after_flush = false;
  bool peer_closed = false;
  bool want_read = true;    ///< EPOLLIN armed
  bool want_write = false;  ///< EPOLLOUT armed
  bool registered = true;   ///< fd present in the epoll set
  std::chrono::steady_clock::time_point last_active;
};

struct Reactor::Worker {
  std::size_t index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  TcpListener listener;
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns;
  std::uint64_t next_seq = kFirstConnSeq;
  std::chrono::steady_clock::time_point last_sweep;
  std::mutex post_mutex;
  std::vector<std::function<void()>> posted;
  std::atomic<std::size_t> open{0};
  std::atomic<std::size_t> suspended{0};
  std::thread thread;
};

Reactor::Reactor(Options options, DataFn on_data)
    : options_(options), on_data_(std::move(on_data)) {
  if (options_.workers == 0) options_.workers = 1;
}

Reactor::~Reactor() { stop(); }

std::size_t Reactor::worker_of(ConnId id) {
  return static_cast<std::size_t>(id >> kWorkerShift);
}

util::Result<void> Reactor::start() {
  if (running_.exchange(true)) return {};
  for (std::size_t i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    // Worker 0 resolves an ephemeral port; the rest share it via
    // SO_REUSEPORT so the kernel spreads incoming connections.
    const std::uint16_t bind_port = i == 0 ? options_.port : port_;
    auto listener = TcpListener::bind_reuseport(bind_port, options_.backlog);
    if (!listener.ok()) {
      running_ = false;
      workers_.clear();
      return util::Result<void>::error("reactor: " +
                                       listener.error_message());
    }
    worker->listener = std::move(listener).value();
    if (auto nb = worker->listener.set_non_blocking(); !nb) {
      running_ = false;
      workers_.clear();
      return util::Result<void>::error("reactor: " + nb.error_message());
    }
    if (i == 0) port_ = worker->listener.port();

    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->epoll_fd < 0 || worker->event_fd < 0) {
      if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
      if (worker->event_fd >= 0) ::close(worker->event_fd);
      running_ = false;
      workers_.clear();
      return util::Result<void>::error("reactor: epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->listener.fd(), &ev);
    ev.data.u64 = kEventTag;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->event_fd, &ev);
    worker->last_sweep = std::chrono::steady_clock::now();
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    raw->thread = std::thread([this, raw] { worker_loop(*raw); });
  }
  return {};
}

void Reactor::drain() {
  if (!running_.load()) return;
  draining_.store(true);
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    post(raw->index, [this, raw] {
      raw->listener.close();
      std::vector<ConnId> idle;
      for (const auto& [id, conn] : raw->conns) {
        if (conn->suspended) continue;  // a handler owns it; drain waits
        if (!conn->out.empty()) {
          // Mid-flush response: let it finish, then close.
          conn->close_after_flush = true;
          continue;
        }
        idle.push_back(id);
      }
      for (const ConnId id : idle) close_conn(*raw, id);
    });
  }
}

void Reactor::stop() {
  if (!running_.exchange(false)) return;
  for (auto& worker : workers_) {
    // Wake the loop; it observes running_ == false and exits.
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(worker->event_fd, &one, sizeof one);
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& worker : workers_) {
    for (auto& [id, conn] : worker->conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    worker->conns.clear();
    worker->open.store(0);
    worker->suspended.store(0);
    worker->listener.close();
    if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
    if (worker->event_fd >= 0) ::close(worker->event_fd);
  }
  workers_.clear();
  draining_.store(false);
}

std::size_t Reactor::open_connections() const {
  std::size_t total = 0;
  for (const auto& worker : workers_) total += worker->open.load();
  return total;
}

std::size_t Reactor::suspended_connections() const {
  std::size_t total = 0;
  for (const auto& worker : workers_) total += worker->suspended.load();
  return total;
}

void Reactor::post(std::size_t worker_index, std::function<void()> fn) {
  if (worker_index >= workers_.size()) return;
  Worker& worker = *workers_[worker_index];
  {
    const std::lock_guard<std::mutex> lock(worker.post_mutex);
    worker.posted.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(worker.event_fd, &one, sizeof one);
}

void Reactor::send(ConnId id, std::vector<std::string> parts,
                   bool close_after) {
  const std::size_t index = worker_of(id);
  if (index >= workers_.size()) return;
  Worker& worker = *workers_[index];
  const auto it = worker.conns.find(id);
  if (it == worker.conns.end()) return;
  queue_output(worker, *it->second, std::move(parts), close_after);
}

void Reactor::complete(ConnId id, std::vector<std::string> parts,
                       bool close_after, std::function<void()> on_done) {
  post(worker_of(id),
       [this, id, parts = std::move(parts), close_after,
        on_done = std::move(on_done)]() mutable {
         Worker& worker = *workers_[worker_of(id)];
         const auto it = worker.conns.find(id);
         if (it != worker.conns.end()) {
           Conn& conn = *it->second;
           if (conn.suspended) {
             conn.suspended = false;
             worker.suspended.fetch_sub(1);
           }
           conn.last_active = std::chrono::steady_clock::now();
           const bool close =
               close_after || conn.peer_closed || draining_.load();
           queue_output(worker, conn, std::move(parts), close);
           // The connection may have been closed by queue_output (write
           // error / overflow); re-resolve before touching it again.
           const auto again = worker.conns.find(id);
           if (again != worker.conns.end() &&
               !again->second->close_after_flush &&
               !again->second->in.empty()) {
             // Pipelined bytes arrived while the handler ran.
             run_data(worker, *again->second);
           } else if (again != worker.conns.end() &&
                      again->second->peer_closed &&
                      again->second->out.empty()) {
             close_conn(worker, id);
           }
         }
         if (on_done) on_done();
       });
}

void Reactor::worker_loop(Worker& worker) {
  std::vector<epoll_event> events(256);
  while (running_.load()) {
    const int n = ::epoll_wait(worker.epoll_fd, events.data(),
                               static_cast<int>(events.size()), 250);
    if (n < 0 && errno != EINTR) {
      util::log_error("reactor", "epoll_wait failed: ", std::strerror(errno));
      return;
    }
    if (!running_.load()) return;

    // Cross-thread work first: completions re-arm connections before
    // their events are examined.
    std::vector<std::function<void()>> posted;
    {
      const std::lock_guard<std::mutex> lock(worker.post_mutex);
      posted.swap(worker.posted);
    }
    for (auto& fn : posted) fn();

    for (int i = 0; i < std::max(n, 0); ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kListenerTag) {
        accept_ready(worker);
        continue;
      }
      if (ev.data.u64 == kEventTag) {
        std::uint64_t drained = 0;
        while (::read(worker.event_fd, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      const auto it = worker.conns.find(ev.data.u64);
      if (it == worker.conns.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if ((ev.events & EPOLLOUT) != 0) {
        flush(worker, conn);
        if (worker.conns.find(ev.data.u64) == worker.conns.end()) continue;
      }
      if ((ev.events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        conn_readable(worker, conn);
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (now - worker.last_sweep > std::chrono::milliseconds(250)) {
      worker.last_sweep = now;
      sweep_idle(worker);
    }
  }
}

void Reactor::accept_ready(Worker& worker) {
  while (true) {
    const int fd = ::accept4(worker.listener.fd(), nullptr, nullptr,
                             SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;  // transient, per-connection
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK && running_.load() &&
          !draining_.load()) {
        util::log_debug("reactor", "accept failed: ", std::strerror(errno));
      }
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = (static_cast<ConnId>(worker.index) << kWorkerShift) |
               worker.next_seq++;
    conn->last_active = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    worker.conns.emplace(conn->id, std::move(conn));
    worker.open.fetch_add(1);
  }
}

void Reactor::conn_readable(Worker& worker, Conn& conn) {
  char buf[16384];
  bool got_bytes = false;
  while (conn.want_read) {
    if (conn.in.size() >= options_.max_read_buffer) {
      // Backpressure: stop reading until the protocol layer consumes.
      conn.want_read = false;
      update_interest(worker, conn);
      break;
    }
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      conn.last_active = std::chrono::steady_clock::now();
      got_bytes = true;
      continue;
    }
    if (n == 0) {
      conn.peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.peer_closed = true;  // hard error: treat as gone
    break;
  }
  const ConnId id = conn.id;
  if (conn.peer_closed && conn.want_read) {
    // Stop watching for input: EOF would level-trigger EPOLLIN forever
    // while a suspended handler runs.
    conn.want_read = false;
    update_interest(worker, conn);
  }
  if (got_bytes && !conn.suspended) {
    run_data(worker, conn);
    if (worker.conns.find(id) == worker.conns.end()) return;
  }
  if (conn.peer_closed && !conn.suspended && conn.out.empty()) {
    // EOF with no response owed (a half-request is abandoned, like the
    // legacy server's "connection closed" path).
    close_conn(worker, id);
  }
}

void Reactor::run_data(Worker& worker, Conn& conn) {
  const ConnId id = conn.id;
  const Verdict verdict = on_data_(id, conn.in);
  // The callback may queue output via send(), which can close the
  // connection on a write error — re-resolve before mutating.
  const auto it = worker.conns.find(id);
  if (it == worker.conns.end()) return;
  Conn& current = *it->second;
  switch (verdict) {
    case Verdict::kContinue:
      if (!current.want_read && !current.peer_closed &&
          current.in.size() < options_.max_read_buffer) {
        current.want_read = true;  // backpressure released
        update_interest(worker, current);
      }
      break;
    case Verdict::kSuspend:
      if (!current.suspended) {
        current.suspended = true;
        worker.suspended.fetch_add(1);
      }
      break;
    case Verdict::kClose:
      current.close_after_flush = true;
      if (current.out.empty()) close_conn(worker, id);
      break;
  }
}

void Reactor::queue_output(Worker& worker, Conn& conn,
                           std::vector<std::string> parts, bool close_after) {
  for (auto& part : parts) {
    if (part.empty()) continue;
    conn.out_bytes += part.size();
    conn.out.push_back(std::move(part));
  }
  if (close_after) conn.close_after_flush = true;
  if (conn.out_bytes > options_.max_write_buffer) {
    // The peer is not draining responses; shed the slow reader.
    close_conn(worker, conn.id);
    return;
  }
  flush(worker, conn);
}

void Reactor::flush(Worker& worker, Conn& conn) {
  const ConnId id = conn.id;
  while (!conn.out.empty()) {
    iovec iov[kMaxIov];
    int count = 0;
    std::size_t offset = conn.out_front_offset;
    for (auto it = conn.out.begin(); it != conn.out.end() && count < kMaxIov;
         ++it) {
      iov[count].iov_base = it->data() + offset;
      iov[count].iov_len = it->size() - offset;
      offset = 0;
      ++count;
    }
    const ssize_t n = ::writev(conn.fd, iov, count);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          update_interest(worker, conn);
        }
        return;
      }
      close_conn(worker, id);  // peer gone mid-response
      return;
    }
    std::size_t remaining = static_cast<std::size_t>(n);
    conn.out_bytes -= remaining;
    while (remaining > 0) {
      std::string& front = conn.out.front();
      const std::size_t left = front.size() - conn.out_front_offset;
      if (remaining >= left) {
        remaining -= left;
        conn.out_front_offset = 0;
        conn.out.pop_front();
      } else {
        conn.out_front_offset += remaining;
        remaining = 0;
      }
    }
  }
  if (conn.want_write) {
    conn.want_write = false;
    update_interest(worker, conn);
  }
  if (conn.close_after_flush) close_conn(worker, id);
}

void Reactor::update_interest(Worker& worker, Conn& conn) {
  const std::uint32_t mask = (conn.want_read ? EPOLLIN : 0u) |
                             (conn.want_write ? EPOLLOUT : 0u);
  if (mask == 0) {
    // Fully quiesced (reads paused, nothing to write — e.g. a parked
    // connection under backpressure). Remove the fd entirely: an empty
    // interest mask would still level-trigger EPOLLHUP forever if the
    // peer hangs up while we wait for the handler.
    if (conn.registered) {
      ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
      conn.registered = false;
    }
    return;
  }
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = conn.id;
  if (conn.registered) {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  } else {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, conn.fd, &ev);
    conn.registered = true;
  }
}

void Reactor::close_conn(Worker& worker, ConnId id) {
  const auto it = worker.conns.find(id);
  if (it == worker.conns.end()) return;
  Conn& conn = *it->second;
  if (conn.suspended) worker.suspended.fetch_sub(1);
  if (conn.registered) {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  }
  ::close(conn.fd);
  worker.conns.erase(it);
  worker.open.fetch_sub(1);
}

void Reactor::sweep_idle(Worker& worker) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<ConnId> expired;
  for (const auto& [id, conn] : worker.conns) {
    if (!conn->suspended && now - conn->last_active > options_.idle_timeout) {
      expired.push_back(id);
    }
  }
  for (const ConnId id : expired) close_conn(worker, id);
}

}  // namespace bifrost::net
