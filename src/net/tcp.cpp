#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bifrost::net {
namespace {

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void FdHandle::reset() {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

util::Result<TcpStream> TcpStream::connect(const std::string& host,
                                           std::uint16_t port,
                                           std::chrono::milliseconds timeout) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
      rc != 0) {
    return util::Result<TcpStream>::error("getaddrinfo(" + host +
                                          "): " + gai_strerror(rc));
  }
  FdHandle fd(::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                       res->ai_protocol));
  if (!fd.valid()) {
    ::freeaddrinfo(res);
    return util::Result<TcpStream>::error(errno_message("socket"));
  }

  // Non-blocking connect with poll() so we honour the timeout.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd.get(), res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    return util::Result<TcpStream>::error(errno_message("connect"));
  }
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc <= 0) {
      return util::Result<TcpStream>::error(
          rc == 0 ? "connect timeout" : errno_message("poll"));
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return util::Result<TcpStream>::error(std::string("connect: ") +
                                            std::strerror(err));
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);  // back to blocking

  TcpStream stream(std::move(fd));
  if (auto r = stream.set_no_delay(true); !r) {
    return util::Result<TcpStream>::error(r.error_message());
  }
  return stream;
}

util::Result<void> TcpStream::set_io_timeout(
    std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0 ||
      ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) != 0) {
    return util::Result<void>::error(errno_message("setsockopt(timeout)"));
  }
  return {};
}

util::Result<void> TcpStream::set_no_delay(bool on) {
  const int value = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &value,
                   sizeof value) != 0) {
    return util::Result<void>::error(errno_message("setsockopt(nodelay)"));
  }
  return {};
}

util::Result<std::size_t> TcpStream::read_some(char* buf, std::size_t len) {
  while (true) {
    const ssize_t n = ::recv(fd_.get(), buf, len, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return util::Result<std::size_t>::error("read timeout");
    }
    return util::Result<std::size_t>::error(errno_message("recv"));
  }
}

util::Result<void> TcpStream::write_all(const char* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd_.get(), buf + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return util::Result<void>::error("write timeout");
    }
    return util::Result<void>::error(errno_message("send"));
  }
  return {};
}

void TcpStream::shutdown_both() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

util::Result<TcpListener> TcpListener::bind(std::uint16_t port, int backlog) {
  return bind_impl(port, backlog, /*reuse_port=*/false);
}

util::Result<TcpListener> TcpListener::bind_reuseport(std::uint16_t port,
                                                      int backlog) {
  return bind_impl(port, backlog, /*reuse_port=*/true);
}

util::Result<TcpListener> TcpListener::bind_impl(std::uint16_t port,
                                                 int backlog,
                                                 bool reuse_port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return util::Result<TcpListener>::error(errno_message("socket"));
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) !=
          0) {
    return util::Result<TcpListener>::error(
        errno_message("setsockopt(reuseport)"));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return util::Result<TcpListener>::error(errno_message("bind"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return util::Result<TcpListener>::error(errno_message("listen"));
  }

  socklen_t len = sizeof addr;
  ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len);

  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

util::Result<TcpStream> TcpListener::accept() {
  while (true) {
    const int client = ::accept4(fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) {
      TcpStream stream((FdHandle(client)));
      (void)stream.set_no_delay(true);
      return stream;
    }
    // Transient, per-connection failures: the client gave up between
    // SYN and accept (ECONNABORTED, or EPROTO on some stacks), a signal
    // interrupted us, or the kernel reported an early network error on
    // the nascent connection. None of these say anything about the
    // listener — retry instead of surfacing a spurious error (a loaded
    // CI runner hits these regularly).
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO ||
        errno == ENETDOWN || errno == EHOSTUNREACH || errno == ENETUNREACH ||
        errno == EHOSTDOWN || errno == ENONET) {
      continue;
    }
    return util::Result<TcpStream>::error(errno_message("accept"));
  }
}

util::Result<void> TcpListener::set_non_blocking() {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return util::Result<void>::error(errno_message("fcntl(nonblock)"));
  }
  return {};
}

void TcpListener::close() {
  // Shut down first so a concurrent accept() wakes with an error instead
  // of racing on the closed descriptor.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  fd_.reset();
}

}  // namespace bifrost::net
