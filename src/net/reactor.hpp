// Event-driven multicore I/O: an epoll reactor with SO_REUSEPORT
// worker-per-core accept loops. Each worker thread owns one epoll
// instance, one listening socket sharing the server port, and every
// connection it ever accepted — connections never migrate between
// workers, so per-connection state needs no locking. Protocol logic
// lives above (http::HttpServer): the reactor hands buffered bytes to a
// callback on the owning worker thread and assembles responses with
// writev from queued scatter-gather parts.
//
// Ownership/threading contract:
//  * DataFn runs on the worker that owns the connection. It may consume
//    bytes from the input buffer and queue output via send().
//  * A protocol layer that wants to run a (possibly blocking) handler
//    elsewhere returns Verdict::kSuspend; the connection stays parked
//    (its input still accumulates, bounded) until complete() marshals
//    the response back onto the owning worker from any thread.
//  * Bounded buffers give backpressure both ways: a connection whose
//    input buffer fills stops being read until bytes are consumed; one
//    whose output queue exceeds the bound is closed as a slow reader.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace bifrost::net {

class Reactor {
 public:
  /// Stable connection identity. Encodes the owning worker; ids are
  /// never reused, so a completion racing a close is a safe no-op.
  using ConnId = std::uint64_t;

  enum class Verdict {
    kContinue,  ///< consumed what it could; resume reading
    kSuspend,   ///< a handler owns the connection until complete()
    kClose,     ///< flush queued output, then close
  };

  /// Invoked on the owning worker whenever a connection has new input
  /// (and is not suspended). The callback erases the bytes it consumed
  /// from `input` and may queue responses with send().
  using DataFn = std::function<Verdict(ConnId id, std::string& input)>;

  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral
    std::size_t workers = 1;
    int backlog = 1024;
    /// Idle (non-suspended) connections are closed after this long
    /// without traffic.
    std::chrono::milliseconds idle_timeout{60000};
    /// Per-connection input bound; reading pauses (backpressure) while
    /// the protocol layer has this much unconsumed data buffered.
    std::size_t max_read_buffer = 1 << 20;
    /// Per-connection output bound; a peer that won't drain this much
    /// queued response data is closed.
    std::size_t max_write_buffer = 4u << 20;
  };

  Reactor(Options options, DataFn on_data);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Binds one SO_REUSEPORT listener per worker and starts the worker
  /// threads.
  util::Result<void> start();

  /// Stops accepting and closes idle connections. Suspended connections
  /// survive until their complete(); their responses are flushed and
  /// the connection is then closed regardless of keep-alive.
  void drain();

  /// Force-closes everything and joins the workers. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::size_t open_connections() const;
  /// Connections currently parked under Verdict::kSuspend.
  [[nodiscard]] std::size_t suspended_connections() const;

  /// Queues response bytes on the connection (scatter-gather: parts are
  /// written with writev, never concatenated). Worker-thread only —
  /// call from inside DataFn.
  void send(ConnId id, std::vector<std::string> parts, bool close_after);

  /// Thread-safe: marshals a response for a suspended connection back
  /// to its owning worker, resumes reading (or closes, if close_after /
  /// draining / the peer vanished). `on_done` — optional — runs on the
  /// owning worker after the response is queued and flushed as far as
  /// the socket allows, whether or not the connection still exists.
  void complete(ConnId id, std::vector<std::string> parts, bool close_after,
                std::function<void()> on_done = nullptr);

 private:
  struct Conn;
  struct Worker;

  void worker_loop(Worker& worker);
  void accept_ready(Worker& worker);
  void conn_readable(Worker& worker, Conn& conn);
  void run_data(Worker& worker, Conn& conn);
  void queue_output(Worker& worker, Conn& conn,
                    std::vector<std::string> parts, bool close_after);
  void flush(Worker& worker, Conn& conn);
  void close_conn(Worker& worker, ConnId id);
  void update_interest(Worker& worker, Conn& conn);
  void sweep_idle(Worker& worker);
  void post(std::size_t worker_index, std::function<void()> fn);
  [[nodiscard]] static std::size_t worker_of(ConnId id);

  Options options_;
  DataFn on_data_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
};

}  // namespace bifrost::net
