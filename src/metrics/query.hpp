// PromQL-subset query language. Covers the query surface Bifrost's DSL
// uses against its metrics provider (instant vector selectors with label
// matchers, optional range windows, and an aggregation function):
//
//   request_errors{instance="search:80"}
//   sum(http_requests_total{service="product"}[60s])
//   rate(request_count{version="fastSearch"}[5m])
//   avg(response_time_ms{service="search"}[30s])
//
// Grammar:
//   expr     := term (('+' | '-') term)*
//   term     := primary (('*' | '/') primary)*
//   primary  := number | query | '(' expr ')'
//   query    := func '(' selector ')' | selector
//   func     := sum | avg | min | max | count | rate | increase
//   selector := name ( '{' matcher (',' matcher)* '}' )? ( '[' dur ']' )?
//   matcher  := label '=' '"' value '"'
//   dur      := integer ('ms' | 's' | 'm' | 'h')
//
// Semantics (scalar result):
//  * no window: instant value per matching series (5 min lookback),
//    then func across series (default: sum).
//  * window: per-series aggregation over the window (rate/increase are
//    counter deltas; rate divides by the window), then sum across series.
//  * arithmetic combines scalar results; x/0 evaluates to 0 (checks
//    compare against thresholds, so a NaN would poison validators).
//    A/B comparisons are the motivating use:
//       sales_total{version="b"} - sales_total{version="a"} with ">0".
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "metrics/timeseries.hpp"
#include "util/result.hpp"

namespace bifrost::metrics {

enum class Aggregation {
  kSum,
  kAvg,
  kMin,
  kMax,
  kCount,
  kRate,
  kIncrease,
};

struct Query {
  Selector selector;
  std::optional<Aggregation> aggregation;
  std::optional<double> window_seconds;

  [[nodiscard]] std::string to_string() const;
};

/// Parses the textual query form above (a single selector, no
/// arithmetic; see Expr for full expressions).
util::Result<Query> parse_query(std::string_view text);

/// An arithmetic expression over queries and constants.
class Expr {
 public:
  enum class Op { kLeaf, kConst, kAdd, kSub, kMul, kDiv };

  [[nodiscard]] Op op() const { return op_; }
  [[nodiscard]] const Query& leaf() const { return query_; }
  [[nodiscard]] std::string to_string() const;

  static Expr leaf_of(Query query);
  static Expr constant(double value);
  static Expr binary(Op op, Expr lhs, Expr rhs);

 private:
  Op op_ = Op::kConst;
  double constant_ = 0.0;
  Query query_;
  std::shared_ptr<const Expr> lhs_;
  std::shared_ptr<const Expr> rhs_;

  friend struct ExprEval;
};

/// Parses a full expression ("a - b", "rate(x[1m]) / 2", ...).
util::Result<Expr> parse_expr(std::string_view text);

struct QueryResult {
  double value = 0.0;
  std::size_t series_matched = 0;  ///< 0 means "no data"
};

/// Evaluates `query` against `store` as of `at_time` (seconds).
/// A query that matches no series yields series_matched == 0 and value 0;
/// the caller decides whether no-data passes or fails its check.
QueryResult evaluate(const TimeSeriesStore& store, const Query& query,
                     double at_time);

/// Evaluates an expression; series_matched is the total over all leaf
/// queries (0 = none of the referenced metrics had data).
QueryResult evaluate(const TimeSeriesStore& store, const Expr& expr,
                     double at_time);

/// Parse (full expression grammar) + evaluate in one step.
util::Result<QueryResult> evaluate(const TimeSeriesStore& store,
                                   std::string_view text, double at_time);

}  // namespace bifrost::metrics
