#include "metrics/query.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/strings.hpp"

namespace bifrost::metrics {
namespace {

const char* aggregation_name(Aggregation agg) {
  switch (agg) {
    case Aggregation::kSum:
      return "sum";
    case Aggregation::kAvg:
      return "avg";
    case Aggregation::kMin:
      return "min";
    case Aggregation::kMax:
      return "max";
    case Aggregation::kCount:
      return "count";
    case Aggregation::kRate:
      return "rate";
    case Aggregation::kIncrease:
      return "increase";
  }
  return "?";
}

std::optional<Aggregation> aggregation_from(std::string_view name) {
  if (name == "sum") return Aggregation::kSum;
  if (name == "avg") return Aggregation::kAvg;
  if (name == "min") return Aggregation::kMin;
  if (name == "max") return Aggregation::kMax;
  if (name == "count") return Aggregation::kCount;
  if (name == "rate") return Aggregation::kRate;
  if (name == "increase") return Aggregation::kIncrease;
  return std::nullopt;
}

bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(s[0])) == 0;
}

util::Result<double> parse_duration_seconds(std::string_view s) {
  double multiplier = 1.0;
  if (util::ends_with(s, "ms")) {
    multiplier = 0.001;
    s.remove_suffix(2);
  } else if (util::ends_with(s, "s")) {
    s.remove_suffix(1);
  } else if (util::ends_with(s, "m")) {
    multiplier = 60.0;
    s.remove_suffix(1);
  } else if (util::ends_with(s, "h")) {
    multiplier = 3600.0;
    s.remove_suffix(1);
  } else {
    return util::Result<double>::error("duration needs a unit (ms/s/m/h)");
  }
  const auto n = util::parse_int(s);
  if (!n || *n <= 0) {
    return util::Result<double>::error("invalid duration value");
  }
  return static_cast<double>(*n) * multiplier;
}

util::Result<Labels> parse_matchers(std::string_view inner) {
  Labels out;
  inner = util::trim(inner);
  if (inner.empty()) return out;
  size_t pos = 0;
  while (pos < inner.size()) {
    const size_t eq = inner.find('=', pos);
    if (eq == std::string_view::npos) {
      return util::Result<Labels>::error("matcher missing '='");
    }
    const std::string label(util::trim(inner.substr(pos, eq - pos)));
    if (!valid_metric_name(label)) {
      return util::Result<Labels>::error("invalid label name: " + label);
    }
    size_t vpos = eq + 1;
    while (vpos < inner.size() && inner[vpos] == ' ') ++vpos;
    if (vpos >= inner.size() || inner[vpos] != '"') {
      return util::Result<Labels>::error("matcher value must be quoted");
    }
    const size_t vend = inner.find('"', vpos + 1);
    if (vend == std::string_view::npos) {
      return util::Result<Labels>::error("unterminated matcher value");
    }
    out[label] = std::string(inner.substr(vpos + 1, vend - vpos - 1));
    pos = vend + 1;
    while (pos < inner.size() && (inner[pos] == ' ' || inner[pos] == ',')) {
      ++pos;
    }
  }
  return out;
}

}  // namespace

std::string Query::to_string() const {
  std::string inner = selector.to_string();
  if (window_seconds) {
    inner += "[" + std::to_string(static_cast<long long>(*window_seconds)) +
             "s]";
  }
  if (aggregation) {
    return std::string(aggregation_name(*aggregation)) + "(" + inner + ")";
  }
  return inner;
}

util::Result<Query> parse_query(std::string_view text) {
  Query query;
  std::string_view rest = util::trim(text);

  // Optional aggregation function wrapper.
  const size_t paren = rest.find('(');
  if (paren != std::string_view::npos &&
      rest.find('{') > paren) {  // '(' before any '{' means func call
    const std::string_view func = util::trim(rest.substr(0, paren));
    const auto agg = aggregation_from(func);
    if (!agg) {
      return util::Result<Query>::error("unknown aggregation: " +
                                        std::string(func));
    }
    if (!util::ends_with(rest, ")")) {
      return util::Result<Query>::error("missing closing ')'");
    }
    query.aggregation = agg;
    rest = util::trim(rest.substr(paren + 1, rest.size() - paren - 2));
  }

  // Optional range window suffix.
  if (util::ends_with(rest, "]")) {
    const size_t open = rest.rfind('[');
    if (open == std::string_view::npos) {
      return util::Result<Query>::error("unbalanced ']'");
    }
    auto window =
        parse_duration_seconds(rest.substr(open + 1, rest.size() - open - 2));
    if (!window.ok()) return util::Result<Query>::error(window.error_message());
    query.window_seconds = window.value();
    rest = util::trim(rest.substr(0, open));
  }

  // Selector: name plus optional matchers.
  const size_t brace = rest.find('{');
  if (brace == std::string_view::npos) {
    query.selector.name = std::string(rest);
  } else {
    if (!util::ends_with(rest, "}")) {
      return util::Result<Query>::error("unterminated matcher block");
    }
    query.selector.name = std::string(util::trim(rest.substr(0, brace)));
    auto matchers =
        parse_matchers(rest.substr(brace + 1, rest.size() - brace - 2));
    if (!matchers.ok()) {
      return util::Result<Query>::error(matchers.error_message());
    }
    query.selector.matchers = std::move(matchers).value();
  }
  if (!valid_metric_name(query.selector.name)) {
    return util::Result<Query>::error("invalid metric name: " +
                                      query.selector.name);
  }
  if ((query.aggregation == Aggregation::kRate ||
       query.aggregation == Aggregation::kIncrease) &&
      !query.window_seconds) {
    return util::Result<Query>::error("rate/increase need a [window]");
  }
  return query;
}

namespace {

double aggregate_values(Aggregation agg, const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  switch (agg) {
    case Aggregation::kSum:
    case Aggregation::kRate:      // per-series results summed across series
    case Aggregation::kIncrease:  // (idem)
    {
      double sum = 0.0;
      for (const double v : values) sum += v;
      return sum;
    }
    case Aggregation::kAvg: {
      double sum = 0.0;
      for (const double v : values) sum += v;
      return sum / static_cast<double>(values.size());
    }
    case Aggregation::kMin:
      return *std::min_element(values.begin(), values.end());
    case Aggregation::kMax:
      return *std::max_element(values.begin(), values.end());
    case Aggregation::kCount:
      return static_cast<double>(values.size());
  }
  return 0.0;
}

double per_series_window_value(Aggregation agg,
                               const std::vector<Sample>& samples,
                               double window) {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const Sample& s : samples) values.push_back(s.value);
  switch (agg) {
    case Aggregation::kRate:
    case Aggregation::kIncrease: {
      // Counter semantics: delta between last and first sample in the
      // window (resets are not handled — our producers never reset).
      const double delta = samples.back().value - samples.front().value;
      if (agg == Aggregation::kIncrease) return delta;
      return window > 0.0 ? delta / window : 0.0;
    }
    case Aggregation::kSum: {
      double sum = 0.0;
      for (const double v : values) sum += v;
      return sum;
    }
    case Aggregation::kAvg: {
      double sum = 0.0;
      for (const double v : values) sum += v;
      return sum / static_cast<double>(values.size());
    }
    case Aggregation::kMin:
      return *std::min_element(values.begin(), values.end());
    case Aggregation::kMax:
      return *std::max_element(values.begin(), values.end());
    case Aggregation::kCount:
      return static_cast<double>(values.size());
  }
  return 0.0;
}

}  // namespace

QueryResult evaluate(const TimeSeriesStore& store, const Query& query,
                     double at_time) {
  QueryResult result;
  if (query.window_seconds) {
    const auto ranges =
        store.range(query.selector, at_time, *query.window_seconds);
    result.series_matched = ranges.size();
    const Aggregation agg = query.aggregation.value_or(Aggregation::kAvg);
    double sum = 0.0;
    for (const auto& [key, samples] : ranges) {
      sum += per_series_window_value(agg, samples, *query.window_seconds);
    }
    // Across series: sum of per-series aggregates (matches the common
    // sum(rate(...)) idiom collapsed into one level).
    result.value = sum;
    return result;
  }
  const auto instants = store.instant(query.selector, at_time);
  result.series_matched = instants.size();
  std::vector<double> values;
  values.reserve(instants.size());
  for (const auto& [key, sample] : instants) values.push_back(sample.value);
  result.value =
      aggregate_values(query.aggregation.value_or(Aggregation::kSum), values);
  return result;
}

// ---------------------------------------------------------------------------
// Arithmetic expressions

Expr Expr::leaf_of(Query query) {
  Expr e;
  e.op_ = Op::kLeaf;
  e.query_ = std::move(query);
  return e;
}

Expr Expr::constant(double value) {
  Expr e;
  e.op_ = Op::kConst;
  e.constant_ = value;
  return e;
}

Expr Expr::binary(Op op, Expr lhs, Expr rhs) {
  Expr e;
  e.op_ = op;
  e.lhs_ = std::make_shared<const Expr>(std::move(lhs));
  e.rhs_ = std::make_shared<const Expr>(std::move(rhs));
  return e;
}

std::string Expr::to_string() const {
  switch (op_) {
    case Op::kLeaf:
      return query_.to_string();
    case Op::kConst: {
      std::ostringstream out;
      out << constant_;
      return out.str();
    }
    case Op::kAdd:
      return "(" + lhs_->to_string() + " + " + rhs_->to_string() + ")";
    case Op::kSub:
      return "(" + lhs_->to_string() + " - " + rhs_->to_string() + ")";
    case Op::kMul:
      return "(" + lhs_->to_string() + " * " + rhs_->to_string() + ")";
    case Op::kDiv:
      return "(" + lhs_->to_string() + " / " + rhs_->to_string() + ")";
  }
  return "?";
}

namespace {

/// Splits `text` on top-level occurrences of the given single-char
/// operators (outside quotes and any bracket nesting). Returns segments
/// and the operator preceding each segment after the first.
util::Result<std::pair<std::vector<std::string>, std::vector<char>>>
split_top_level(std::string_view text, std::string_view ops) {
  std::vector<std::string> segments;
  std::vector<char> operators;
  std::string current;
  int depth = 0;
  bool in_quote = false;
  for (const char c : text) {
    if (in_quote) {
      current += c;
      if (c == '"') in_quote = false;
      continue;
    }
    switch (c) {
      case '"':
        in_quote = true;
        current += c;
        break;
      case '(':
      case '{':
      case '[':
        ++depth;
        current += c;
        break;
      case ')':
      case '}':
      case ']':
        --depth;
        if (depth < 0) {
          return util::Result<
              std::pair<std::vector<std::string>, std::vector<char>>>::
              error("unbalanced brackets in expression");
        }
        current += c;
        break;
      default:
        if (depth == 0 && ops.find(c) != std::string_view::npos) {
          segments.push_back(current);
          operators.push_back(c);
          current.clear();
        } else {
          current += c;
        }
    }
  }
  if (in_quote || depth != 0) {
    return util::Result<std::pair<std::vector<std::string>,
                                  std::vector<char>>>::
        error("unbalanced quotes or brackets in expression");
  }
  segments.push_back(current);
  return std::pair{std::move(segments), std::move(operators)};
}

util::Result<Expr> parse_expr_impl(std::string_view text);

util::Result<Expr> parse_primary(std::string_view text) {
  text = util::trim(text);
  if (text.empty()) {
    return util::Result<Expr>::error("empty operand in expression");
  }
  if (text.front() == '(' && text.back() == ')') {
    // Only strip if these parens actually match each other.
    int depth = 0;
    bool wraps = true;
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')') {
        --depth;
        if (depth == 0 && i + 1 != text.size()) {
          wraps = false;
          break;
        }
      }
    }
    if (wraps) return parse_expr_impl(text.substr(1, text.size() - 2));
  }
  if (std::isdigit(static_cast<unsigned char>(text.front())) != 0 ||
      text.front() == '.') {
    const auto value = util::parse_double(text);
    if (!value) {
      return util::Result<Expr>::error("invalid numeric constant: " +
                                       std::string(text));
    }
    return Expr::constant(*value);
  }
  auto query = parse_query(text);
  if (!query.ok()) return util::Result<Expr>::error(query.error_message());
  return Expr::leaf_of(std::move(query).value());
}

util::Result<Expr> parse_term(std::string_view text) {
  auto split = split_top_level(text, "*/");
  if (!split.ok()) return util::Result<Expr>::error(split.error_message());
  auto& [segments, operators] = split.value();
  auto expr = parse_primary(segments[0]);
  if (!expr.ok()) return expr;
  Expr result = std::move(expr).value();
  for (size_t i = 0; i < operators.size(); ++i) {
    auto rhs = parse_primary(segments[i + 1]);
    if (!rhs.ok()) return rhs;
    result = Expr::binary(
        operators[i] == '*' ? Expr::Op::kMul : Expr::Op::kDiv,
        std::move(result), std::move(rhs).value());
  }
  return result;
}

util::Result<Expr> parse_expr_impl(std::string_view text) {
  auto split = split_top_level(text, "+-");
  if (!split.ok()) return util::Result<Expr>::error(split.error_message());
  auto& [segments, operators] = split.value();
  auto expr = parse_term(segments[0]);
  if (!expr.ok()) return expr;
  Expr result = std::move(expr).value();
  for (size_t i = 0; i < operators.size(); ++i) {
    auto rhs = parse_term(segments[i + 1]);
    if (!rhs.ok()) return rhs;
    result = Expr::binary(
        operators[i] == '+' ? Expr::Op::kAdd : Expr::Op::kSub,
        std::move(result), std::move(rhs).value());
  }
  return result;
}

}  // namespace

util::Result<Expr> parse_expr(std::string_view text) {
  return parse_expr_impl(util::trim(text));
}

struct ExprEval {
  static QueryResult eval(const TimeSeriesStore& store, const Expr& expr,
                          double at_time) {
    switch (expr.op_) {
      case Expr::Op::kLeaf:
        return evaluate(store, expr.query_, at_time);
      case Expr::Op::kConst:
        // series_matched counts only leaf queries (header contract).
        return QueryResult{expr.constant_, 0};
      default: {
        const QueryResult lhs = eval(store, *expr.lhs_, at_time);
        const QueryResult rhs = eval(store, *expr.rhs_, at_time);
        QueryResult out;
        out.series_matched = lhs.series_matched + rhs.series_matched;
        switch (expr.op_) {
          case Expr::Op::kAdd:
            out.value = lhs.value + rhs.value;
            break;
          case Expr::Op::kSub:
            out.value = lhs.value - rhs.value;
            break;
          case Expr::Op::kMul:
            out.value = lhs.value * rhs.value;
            break;
          case Expr::Op::kDiv:
            out.value = rhs.value == 0.0 ? 0.0 : lhs.value / rhs.value;
            break;
          default:
            break;
        }
        return out;
      }
    }
  }
};

QueryResult evaluate(const TimeSeriesStore& store, const Expr& expr,
                     double at_time) {
  return ExprEval::eval(store, expr, at_time);
}

util::Result<QueryResult> evaluate(const TimeSeriesStore& store,
                                   std::string_view text, double at_time) {
  auto expr = parse_expr(text);
  if (!expr.ok()) {
    return util::Result<QueryResult>::error(expr.error_message());
  }
  return evaluate(store, expr.value(), at_time);
}

}  // namespace bifrost::metrics
