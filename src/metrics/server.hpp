#pragma once

#include <cstdint>
#include <memory>

#include "http/server.hpp"
#include "metrics/timeseries.hpp"

namespace bifrost::metrics {

/// HTTP face of the metrics provider — the Prometheus API stand-in the
/// Bifrost engine queries. Endpoints:
///   GET  /api/v1/query?query=<expr>[&time=<seconds>]
///        -> {"status":"success","data":{"value":..,"seriesMatched":..}}
///   POST /api/v1/ingest   body: {"name":..,"labels":{..},"value":..,
///        "time":..}  (push-style ingestion used by tests/loadgen)
///   GET  /healthz
class MetricsServer {
 public:
  MetricsServer(TimeSeriesStore& store, std::uint16_t port = 0);
  ~MetricsServer();

  void start();
  void stop();
  [[nodiscard]] std::uint16_t port() const;

 private:
  http::Response handle(const http::Request& request);

  TimeSeriesStore& store_;
  std::unique_ptr<http::HttpServer> server_;
};

}  // namespace bifrost::metrics
