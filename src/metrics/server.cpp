#include "metrics/server.hpp"

#include <chrono>

#include "http/url.hpp"
#include "json/json.hpp"
#include "metrics/query.hpp"
#include "util/strings.hpp"

namespace bifrost::metrics {

MetricsServer::MetricsServer(TimeSeriesStore& store, std::uint16_t port)
    : store_(store) {
  http::HttpServer::Options options;
  options.port = port;
  server_ = std::make_unique<http::HttpServer>(
      options, [this](const http::Request& req) { return handle(req); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::start() { server_->start(); }
void MetricsServer::stop() { server_->stop(); }
std::uint16_t MetricsServer::port() const { return server_->port(); }

http::Response MetricsServer::handle(const http::Request& request) {
  const std::string path = request.path();
  if (path == "/healthz") return http::Response::text(200, "ok\n");

  if (path == "/api/v1/query" && request.method == "GET") {
    const auto query_text = request.query_param("query");
    if (!query_text) {
      return http::Response::bad_request("missing query parameter");
    }
    auto expr = parse_expr(*query_text);
    if (!expr.ok()) {
      return http::Response::json(
          400, json::Value(json::Object{{"status", "error"},
                                        {"error", expr.error_message()}})
                   .dump());
    }
    double at_time;
    if (const auto t = request.query_param("time");
        t && util::parse_double(*t)) {
      at_time = *util::parse_double(*t);
    } else {
      // Default: "now" on the wall clock shared with producers' schedulers
      // is unknowable here, so use the newest sample time in the store.
      at_time = 0.0;
      for (const SeriesKey& key : store_.series()) {
        const auto instant = store_.instant(Selector{key.name, key.labels},
                                            1e18, /*lookback=*/1e18);
        for (const auto& [k, sample] : instant) {
          at_time = std::max(at_time, sample.time);
        }
      }
    }
    const QueryResult result = evaluate(store_, expr.value(), at_time);
    return http::Response::json(
        200,
        json::Value(
            json::Object{
                {"status", "success"},
                {"data", json::Object{
                             {"value", result.value},
                             {"seriesMatched", result.series_matched},
                             {"time", at_time}}}})
            .dump());
  }

  if (path == "/api/v1/ingest" && request.method == "POST") {
    auto body = json::parse(request.body);
    if (!body.ok()) return http::Response::bad_request(body.error_message());
    const json::Value& doc = body.value();
    const std::string name = doc.get_string("name");
    if (name.empty()) {
      return http::Response::bad_request("ingest needs a metric name");
    }
    Labels labels;
    if (const json::Value* l = doc.find("labels");
        l != nullptr && l->is_object()) {
      for (const auto& [k, v] : l->as_object()) {
        if (v.is_string()) labels[k] = v.as_string();
      }
    }
    store_.record(name, labels, doc.get_number("time", 0.0),
                  doc.get_number("value", 0.0));
    return http::Response::json(200, R"({"status":"success"})");
  }

  return http::Response::not_found();
}

}  // namespace bifrost::metrics
