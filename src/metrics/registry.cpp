#include "metrics/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/strings.hpp"

namespace bifrost::metrics {

namespace {

// fetch_add for atomic<double> via CAS (libstdc++'s floating fetch_add
// is the same loop; spelled out so relaxed ordering is explicit).
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::increment(double delta) { atomic_add(value_, delta); }

double Counter::value() const {
  return value_.load(std::memory_order_relaxed);
}

void Gauge::set(double value) {
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::add(double delta) { atomic_add(value_, delta); }

double Gauge::value() const {
  return value_.load(std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  int index = 0;
  if (value >= kMinValue) {
    const double position =
        std::log2(value / kMinValue) * kBucketsPerOctave;
    index = position >= kBuckets ? kBuckets + 1
                                 : 1 + static_cast<int>(position);
  }
  buckets_[static_cast<std::size_t>(index)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::bucket_upper(int index) {
  if (index <= 0) return kMinValue;
  if (index > kBuckets) return std::numeric_limits<double>::infinity();
  return kMinValue * std::exp2(static_cast<double>(index) /
                               kBucketsPerOctave);
}

std::array<std::uint64_t, Histogram::kBuckets + 2> Histogram::snapshot()
    const {
  std::array<std::uint64_t, kBuckets + 2> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double p) const {
  const auto counts = snapshot();
  std::uint64_t total = 0;
  for (const std::uint64_t n : counts) total += n;
  if (total == 0) return 0.0;

  const double clamped = std::clamp(p, 0.0, 100.0);
  const double target =
      std::max(1.0, clamped / 100.0 * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < static_cast<int>(counts.size()); ++i) {
    const std::uint64_t in_bucket = counts[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    const double fraction = std::clamp(
        (target - static_cast<double>(cumulative)) /
            static_cast<double>(in_bucket),
        0.0, 1.0);
    if (i == 0) return kMinValue * fraction;  // underflow: [0, kMinValue)
    if (i > kBuckets) return bucket_upper(kBuckets);  // overflow floor
    const double hi = bucket_upper(i);
    const double lo = bucket_upper(i - 1);
    return lo * std::pow(hi / lo, fraction);  // geometric interpolation
  }
  return bucket_upper(kBuckets);
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::shared_ptr<Histogram> Registry::histogram(const std::string& name,
                                               const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_shared<Histogram>();
  return slot;
}

bool Registry::remove_histogram(const std::string& name,
                                const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.erase(SeriesKey{name, labels}) > 0;
}

std::string Registry::expose() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [key, counter] : counters_) {
    out << key.to_string() << ' ' << counter->value() << '\n';
  }
  for (const auto& [key, gauge] : gauges_) {
    out << key.to_string() << ' ' << gauge->value() << '\n';
  }
  for (const auto& [key, histogram] : histograms_) {
    const auto counts = histogram->snapshot();
    std::uint64_t cumulative = 0;
    // Sparse cumulative buckets: only slots that hold samples, plus the
    // mandatory +Inf bucket.
    for (int i = 0; i < static_cast<int>(counts.size()); ++i) {
      if (counts[static_cast<std::size_t>(i)] == 0) continue;
      cumulative += counts[static_cast<std::size_t>(i)];
      if (i > Histogram::kBuckets) break;  // folded into +Inf below
      SeriesKey bucket_key{key.name + "_bucket", key.labels};
      bucket_key.labels["le"] = std::to_string(Histogram::bucket_upper(i));
      out << bucket_key.to_string() << ' ' << cumulative << '\n';
    }
    SeriesKey inf_key{key.name + "_bucket", key.labels};
    inf_key.labels["le"] = "+Inf";
    out << inf_key.to_string() << ' ' << cumulative << '\n';
    SeriesKey sum_key{key.name + "_sum", key.labels};
    out << sum_key.to_string() << ' ' << histogram->sum() << '\n';
    SeriesKey count_key{key.name + "_count", key.labels};
    out << count_key.to_string() << ' ' << histogram->count() << '\n';
  }
  return out.str();
}

util::Result<std::vector<ExpositionSample>> parse_exposition(
    std::string_view text) {
  using R = util::Result<std::vector<ExpositionSample>>;
  std::vector<ExpositionSample> out;
  int line_no = 0;
  for (const std::string& raw : util::split(text, '\n')) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;

    ExpositionSample sample;
    std::string_view rest = line;
    const size_t brace = rest.find('{');
    size_t value_start;
    if (brace != std::string_view::npos) {
      sample.key.name = std::string(rest.substr(0, brace));
      const size_t close = rest.find('}', brace);
      if (close == std::string_view::npos) {
        return R::error("exposition line " + std::to_string(line_no) +
                        ": unterminated label block");
      }
      std::string_view labels = rest.substr(brace + 1, close - brace - 1);
      while (!labels.empty()) {
        const size_t eq = labels.find('=');
        if (eq == std::string_view::npos) {
          return R::error("exposition line " + std::to_string(line_no) +
                          ": label missing '='");
        }
        const std::string label(util::trim(labels.substr(0, eq)));
        size_t vpos = eq + 1;
        if (vpos >= labels.size() || labels[vpos] != '"') {
          return R::error("exposition line " + std::to_string(line_no) +
                          ": label value must be quoted");
        }
        const size_t vend = labels.find('"', vpos + 1);
        if (vend == std::string_view::npos) {
          return R::error("exposition line " + std::to_string(line_no) +
                          ": unterminated label value");
        }
        sample.key.labels[label] =
            std::string(labels.substr(vpos + 1, vend - vpos - 1));
        size_t next = vend + 1;
        while (next < labels.size() &&
               (labels[next] == ',' || labels[next] == ' ')) {
          ++next;
        }
        labels = labels.substr(next);
      }
      value_start = close + 1;
    } else {
      const size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return R::error("exposition line " + std::to_string(line_no) +
                        ": missing value");
      }
      sample.key.name = std::string(rest.substr(0, space));
      value_start = space + 1;
    }
    const auto value = util::parse_double(rest.substr(value_start));
    if (!value) {
      return R::error("exposition line " + std::to_string(line_no) +
                      ": invalid value");
    }
    sample.value = *value;
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace bifrost::metrics
