#include "metrics/registry.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace bifrost::metrics {

void Counter::increment(double delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  value_ += delta;
}

double Counter::value() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return value_;
}

void Gauge::set(double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  value_ = value;
}

void Gauge::add(double delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  value_ += delta;
}

double Gauge::value() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return value_;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::string Registry::expose() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [key, counter] : counters_) {
    out << key.to_string() << ' ' << counter->value() << '\n';
  }
  for (const auto& [key, gauge] : gauges_) {
    out << key.to_string() << ' ' << gauge->value() << '\n';
  }
  return out.str();
}

util::Result<std::vector<ExpositionSample>> parse_exposition(
    std::string_view text) {
  using R = util::Result<std::vector<ExpositionSample>>;
  std::vector<ExpositionSample> out;
  int line_no = 0;
  for (const std::string& raw : util::split(text, '\n')) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;

    ExpositionSample sample;
    std::string_view rest = line;
    const size_t brace = rest.find('{');
    size_t value_start;
    if (brace != std::string_view::npos) {
      sample.key.name = std::string(rest.substr(0, brace));
      const size_t close = rest.find('}', brace);
      if (close == std::string_view::npos) {
        return R::error("exposition line " + std::to_string(line_no) +
                        ": unterminated label block");
      }
      std::string_view labels = rest.substr(brace + 1, close - brace - 1);
      while (!labels.empty()) {
        const size_t eq = labels.find('=');
        if (eq == std::string_view::npos) {
          return R::error("exposition line " + std::to_string(line_no) +
                          ": label missing '='");
        }
        const std::string label(util::trim(labels.substr(0, eq)));
        size_t vpos = eq + 1;
        if (vpos >= labels.size() || labels[vpos] != '"') {
          return R::error("exposition line " + std::to_string(line_no) +
                          ": label value must be quoted");
        }
        const size_t vend = labels.find('"', vpos + 1);
        if (vend == std::string_view::npos) {
          return R::error("exposition line " + std::to_string(line_no) +
                          ": unterminated label value");
        }
        sample.key.labels[label] =
            std::string(labels.substr(vpos + 1, vend - vpos - 1));
        size_t next = vend + 1;
        while (next < labels.size() &&
               (labels[next] == ',' || labels[next] == ' ')) {
          ++next;
        }
        labels = labels.substr(next);
      }
      value_start = close + 1;
    } else {
      const size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return R::error("exposition line " + std::to_string(line_no) +
                        ": missing value");
      }
      sample.key.name = std::string(rest.substr(0, space));
      value_start = space + 1;
    }
    const auto value = util::parse_double(rest.substr(value_start));
    if (!value) {
      return R::error("exposition line " + std::to_string(line_no) +
                      ": invalid value");
    }
    sample.value = *value;
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace bifrost::metrics
