// In-process time-series database: the Prometheus stand-in that Bifrost
// checks query (paper §4.2.2, Listing 1). Series are identified by a
// metric name plus a label set; samples are (time, value) pairs.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace bifrost::metrics {

/// Label set; ordered so series keys are canonical.
using Labels = std::map<std::string, std::string>;

struct Sample {
  double time = 0.0;  ///< seconds on the producing clock's timeline
  double value = 0.0;
};

/// Identifies one series.
struct SeriesKey {
  std::string name;
  Labels labels;

  [[nodiscard]] std::string to_string() const;
  auto operator<=>(const SeriesKey&) const = default;
};

/// A label selector: matches series with the given name whose labels
/// include all listed (name, value) pairs.
struct Selector {
  std::string name;
  Labels matchers;

  [[nodiscard]] bool matches(const SeriesKey& key) const;
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe append-mostly store with windowed reads.
class TimeSeriesStore {
 public:
  /// Appends a sample. Out-of-order samples are accepted but windowed
  /// reads assume per-series times are non-decreasing overall.
  void record(const std::string& name, const Labels& labels, double time,
              double value);

  /// Latest sample of each matching series at or before `at_time`
  /// (lookback-limited: samples older than `lookback` seconds are stale).
  [[nodiscard]] std::vector<std::pair<SeriesKey, Sample>> instant(
      const Selector& selector, double at_time,
      double lookback = 300.0) const;

  /// All samples of each matching series in (at_time - window, at_time].
  [[nodiscard]] std::vector<std::pair<SeriesKey, std::vector<Sample>>> range(
      const Selector& selector, double at_time, double window) const;

  [[nodiscard]] std::vector<SeriesKey> series() const;
  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::size_t sample_count() const;

  /// Drops samples older than `before` across all series (retention).
  void compact(double before);

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<SeriesKey, std::vector<Sample>> series_;
};

}  // namespace bifrost::metrics
