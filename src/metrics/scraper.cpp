#include "metrics/scraper.hpp"

#include <chrono>

#include "metrics/registry.hpp"
#include "util/log.hpp"

namespace bifrost::metrics {

Scraper::Scraper(runtime::Scheduler& scheduler, TimeSeriesStore& store,
                 runtime::Duration interval)
    : scheduler_(scheduler), store_(store), interval_(interval) {}

Scraper::~Scraper() { stop(); }

void Scraper::add_target(Target target) {
  targets_.push_back(std::move(target));
}

void Scraper::start() {
  if (running_.exchange(true)) return;
  schedule_next();
}

void Scraper::stop() {
  running_ = false;
  if (timer_ != runtime::kInvalidTimer) scheduler_.cancel(timer_);
}

void Scraper::schedule_next() {
  timer_ = scheduler_.schedule_after(interval_, [this] {
    if (!running_.load()) return;
    scrape_once();
    schedule_next();
  });
}

std::size_t Scraper::scrape_once() {
  const double now_seconds =
      std::chrono::duration<double>(scheduler_.now()).count();
  std::size_t ok = 0;
  for (const Target& target : targets_) {
    auto response = client_.get("http://" + target.host + ":" +
                                std::to_string(target.port) + target.path);
    if (!response.ok() || response.value().status != 200) {
      scrape_errors_.fetch_add(1);
      util::log_debug("scraper", "scrape of ", target.host, ":", target.port,
                      " failed: ",
                      response.ok() ? std::to_string(response.value().status)
                                    : response.error_message());
      continue;
    }
    auto samples = parse_exposition(response.value().body);
    if (!samples.ok()) {
      scrape_errors_.fetch_add(1);
      util::log_warn("scraper", "bad exposition from ", target.host, ":",
                     target.port, ": ", samples.error_message());
      continue;
    }
    for (const ExpositionSample& sample : samples.value()) {
      Labels labels = sample.key.labels;
      for (const auto& [k, v] : target.labels) labels[k] = v;
      store_.record(sample.key.name, labels, now_seconds, sample.value);
    }
    ++ok;
  }
  return ok;
}

}  // namespace bifrost::metrics
