// Instrumentation registry for services: counters, gauges, and
// histograms exposed in the Prometheus text format (the case-study
// services expose business and performance metrics this way;
// cAdvisor-style resource gauges are recorded by the simulator).
//
// Counters/gauges/histogram buckets are plain atomics so data-plane
// callers (the proxy hot path) never take a lock to record; the
// registry mutex only guards series creation/removal and exposition.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"
#include "util/result.hpp"

namespace bifrost::metrics {

/// Monotonically increasing counter (lock-free).
class Counter {
 public:
  void increment(double delta = 1.0);
  [[nodiscard]] double value() const;

 private:
  std::atomic<double> value_{0.0};
};

/// Arbitrary settable gauge (lock-free).
class Gauge {
 public:
  void set(double value);
  void add(double delta);
  [[nodiscard]] double value() const;

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-scaled-bucket histogram with atomic counters: recording is
/// lock-free and wait-free on the bucket increment, so many threads can
/// observe() concurrently without contending (the proxy records one
/// latency sample per request through this).
///
/// Buckets are geometric with kBucketsPerOctave sub-buckets per power of
/// two, spanning [kMinValue, kMinValue * 2^kOctaves) plus an underflow
/// and an overflow bucket. Percentiles are estimated by interpolating
/// inside the bucket that holds the requested rank; the relative error
/// is bounded by the bucket width (2^(1/kBucketsPerOctave) ~ 9%).
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 8;
  static constexpr int kOctaves = 27;
  static constexpr int kBuckets = kBucketsPerOctave * kOctaves;
  /// Smallest resolvable value; with ms units this is 1 microsecond and
  /// the top bound is ~134 s.
  static constexpr double kMinValue = 1e-3;

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Estimated percentile, p in [0, 100]; 0 when empty. Monotone in p.
  [[nodiscard]] double percentile(double p) const;

  /// Upper bound of bucket slot `index` in [0, kBuckets + 1]; the last
  /// slot is the overflow bucket (+infinity).
  [[nodiscard]] static double bucket_upper(int index);

  /// Per-slot counts, index layout as bucket_upper (exposition and
  /// percentile estimation share this snapshot).
  [[nodiscard]] std::array<std::uint64_t, kBuckets + 2> snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets + 2> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named collection of counters/gauges/histograms; renders the
/// exposition format.
class Registry {
 public:
  /// Returns the counter for (name, labels), creating it on first use.
  /// The reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});

  /// Returns the histogram for (name, labels), creating it on first
  /// use. Shared ownership: holders may keep observing after
  /// remove_histogram() drops the series from exposition.
  std::shared_ptr<Histogram> histogram(const std::string& name,
                                       const Labels& labels = {});

  /// Drops a histogram series from the registry (e.g. when a version
  /// leaves the routing table). Returns true if it existed.
  bool remove_histogram(const std::string& name, const Labels& labels = {});

  /// Prometheus text exposition ("name{l=\"v\"} value" lines;
  /// histograms render cumulative _bucket{le=…}, _sum, and _count).
  [[nodiscard]] std::string expose() const;

 private:
  mutable std::mutex mutex_;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::shared_ptr<Histogram>> histograms_;
};

/// One parsed exposition line.
struct ExpositionSample {
  SeriesKey key;
  double value = 0.0;
};

/// Parses Prometheus text exposition (used by the scraper). '#' comment
/// lines are skipped; malformed lines fail the whole parse.
util::Result<std::vector<ExpositionSample>> parse_exposition(
    std::string_view text);

}  // namespace bifrost::metrics
