// Instrumentation registry for services: counters and gauges exposed in
// the Prometheus text format (the case-study services expose business
// and performance metrics this way; cAdvisor-style resource gauges are
// recorded by the simulator).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"
#include "util/result.hpp"

namespace bifrost::metrics {

/// Monotonically increasing counter.
class Counter {
 public:
  void increment(double delta = 1.0);
  [[nodiscard]] double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

/// Arbitrary settable gauge.
class Gauge {
 public:
  void set(double value);
  void add(double delta);
  [[nodiscard]] double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

/// Named collection of counters/gauges; renders the exposition format.
class Registry {
 public:
  /// Returns the counter for (name, labels), creating it on first use.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});

  /// Prometheus text exposition ("name{l=\"v\"} value" lines).
  [[nodiscard]] std::string expose() const;

 private:
  mutable std::mutex mutex_;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
};

/// One parsed exposition line.
struct ExpositionSample {
  SeriesKey key;
  double value = 0.0;
};

/// Parses Prometheus text exposition (used by the scraper). '#' comment
/// lines are skipped; malformed lines fail the whole parse.
util::Result<std::vector<ExpositionSample>> parse_exposition(
    std::string_view text);

}  // namespace bifrost::metrics
