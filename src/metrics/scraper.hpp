#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "http/client.hpp"
#include "metrics/timeseries.hpp"
#include "runtime/scheduler.hpp"

namespace bifrost::metrics {

/// Pull-based collection from services' /metrics endpoints into a
/// TimeSeriesStore — the cAdvisor/Prometheus scrape loop of the paper's
/// deployment. Runs on a Scheduler so it works in real and virtual time.
class Scraper {
 public:
  struct Target {
    std::string host;
    std::uint16_t port = 0;
    std::string path = "/metrics";
    /// Extra labels stamped onto every scraped series (e.g. instance).
    Labels labels;
  };

  Scraper(runtime::Scheduler& scheduler, TimeSeriesStore& store,
          runtime::Duration interval);
  ~Scraper();

  void add_target(Target target);

  /// Schedules the periodic scrape loop.
  void start();

  /// Stops scheduling further scrapes.
  void stop();

  /// One synchronous scrape pass over all targets (also used directly by
  /// tests). Returns the number of targets scraped successfully.
  std::size_t scrape_once();

  [[nodiscard]] std::uint64_t scrape_errors() const {
    return scrape_errors_.load();
  }

 private:
  void schedule_next();

  runtime::Scheduler& scheduler_;
  TimeSeriesStore& store_;
  runtime::Duration interval_;
  std::vector<Target> targets_;
  http::HttpClient client_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> scrape_errors_{0};
  runtime::TimerId timer_ = runtime::kInvalidTimer;
};

}  // namespace bifrost::metrics
