#include "metrics/timeseries.hpp"

#include <algorithm>

namespace bifrost::metrics {

std::string SeriesKey::to_string() const {
  std::string out = name;
  if (labels.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  out += '}';
  return out;
}

bool Selector::matches(const SeriesKey& key) const {
  if (key.name != name) return false;
  for (const auto& [k, v] : matchers) {
    const auto it = key.labels.find(k);
    if (it == key.labels.end() || it->second != v) return false;
  }
  return true;
}

std::string Selector::to_string() const {
  SeriesKey key{name, matchers};
  return key.to_string();
}

void TimeSeriesStore::record(const std::string& name, const Labels& labels,
                             double time, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  series_[SeriesKey{name, labels}].push_back(Sample{time, value});
}

std::vector<std::pair<SeriesKey, Sample>> TimeSeriesStore::instant(
    const Selector& selector, double at_time, double lookback) const {
  std::vector<std::pair<SeriesKey, Sample>> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, samples] : series_) {
    if (!selector.matches(key)) continue;
    // Scan from the back: samples are appended in time order.
    for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
      if (it->time <= at_time) {
        if (it->time >= at_time - lookback) out.emplace_back(key, *it);
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<SeriesKey, std::vector<Sample>>> TimeSeriesStore::range(
    const Selector& selector, double at_time, double window) const {
  std::vector<std::pair<SeriesKey, std::vector<Sample>>> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, samples] : series_) {
    if (!selector.matches(key)) continue;
    std::vector<Sample> in_window;
    for (const Sample& s : samples) {
      if (s.time > at_time - window && s.time <= at_time) {
        in_window.push_back(s);
      }
    }
    if (!in_window.empty()) out.emplace_back(key, std::move(in_window));
  }
  return out;
}

std::vector<SeriesKey> TimeSeriesStore::series() const {
  std::vector<SeriesKey> out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(series_.size());
  for (const auto& [key, samples] : series_) out.push_back(key);
  return out;
}

std::size_t TimeSeriesStore::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::size_t TimeSeriesStore::sample_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, samples] : series_) n += samples.size();
  return n;
}

void TimeSeriesStore::compact(double before) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, samples] : series_) {
    std::erase_if(samples,
                  [before](const Sample& s) { return s.time < before; });
  }
}

void TimeSeriesStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
}

}  // namespace bifrost::metrics
