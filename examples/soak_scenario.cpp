// Chaos soak walkthrough: a whole-system failure scenario composed,
// enacted, caught, shrunk, and replayed — all in deterministic virtual
// time.
//
//   1. A seed-generated ChaosSchedule torments the fastsearch-rollout
//      example for six virtual hours (backend brownouts, a provider
//      outage, latency overlays, an engine crash, config re-applies)
//      while the InvariantMonitor watches. Correct behavior: the soak
//      ends with zero violations, and a second run of the same seed
//      produces a byte-identical monitor trace.
//   2. The same schedule runs against a system with a planted bug — a
//      config re-apply silently forgets which backends were ejected.
//      The ejection-survives-reapply invariant fires, the shrinker
//      reduces the schedule to a minimal reproducing subset, and the
//      minimal schedule is printed as replayable `chaos:` YAML.
//
//   $ ./examples/soak_scenario
#include <cstdio>
#include <string>

#include "chaos/schedule.hpp"
#include "chaos/soak.hpp"
#include "core/model.hpp"
#include "dsl/dsl.hpp"

using namespace bifrost;
using namespace std::chrono_literals;

namespace {

/// A compact canary -> 50/50 -> full-rollout strategy over a search
/// service with stable/fast versions and one Prometheus-style provider
/// (state durations scaled down so many enactments fit in one soak).
const char* kFastSearchStrategy = R"(
strategy:
  name: fastsearch-rollout
  initial: canary
  states:
    - state:
        name: canary
        duration: 600
        onSuccess: rollout
        onFailure: rollback
        checks:
          - metric:
              name: response-time
              query: response_time_ms{service="search",version="fast"}
              validator: "<150"
              intervalTime: 60
              intervalLimit: 5
        routes:
          - route:
              service: search
              split:
                - version: stable
                  percent: 99
                - version: fast
                  percent: 1
    - state:
        name: rollout
        duration: 600
        onSuccess: done
        onFailure: rollback
        checks:
          - metric:
              name: error-rate
              query: request_errors{service="search",version="fast"}
              validator: "<100"
              intervalTime: 60
              intervalLimit: 5
        routes:
          - route:
              service: search
              split:
                - version: stable
                  percent: 50
                - version: fast
                  percent: 50
    - state:
        name: done
        final: success
        routes:
          - route:
              service: search
              split:
                - version: fast
                  percent: 100
    - state:
        name: rollback
        final: rollback
        routes:
          - route:
              service: search
              split:
                - version: stable
                  percent: 100
deployment:
  providers:
    prometheus: { host: 127.0.0.1, port: 9090 }
  services:
    - service:
        name: search
        versions:
          - version: { name: stable, host: 127.0.0.1, port: 9101 }
          - version: { name: fast, host: 127.0.0.1, port: 9102 }
)";

void print_schedule(const chaos::ChaosSchedule& schedule) {
  for (const auto& window : schedule.windows) {
    std::printf("    %s\n", window.describe().c_str());
  }
}

}  // namespace

int main() {
  auto compiled = dsl::compile(kFastSearchStrategy);
  if (!compiled.ok()) {
    std::fprintf(stderr, "strategy: %s\n", compiled.error_message().c_str());
    return 1;
  }
  const core::StrategyDef def = std::move(compiled).value();

  // --- 1. a healthy system survives six hours of composed chaos -----------
  const auto schedule = chaos::ChaosSchedule::generate(
      /*seed=*/42, /*horizon=*/6h, chaos::ChaosSchedule::Inventory::of(def));
  std::printf("schedule: seed %llu, %zu windows, %zu fault classes\n",
              static_cast<unsigned long long>(schedule.seed),
              schedule.windows.size(), schedule.fault_classes());
  print_schedule(schedule);

  chaos::SoakOptions options;
  const auto healthy = chaos::run_soak(def, schedule, options);
  std::printf(
      "\nhealthy run: %llu events, %llu crash(es), %llu re-appl(ies)\n%s",
      static_cast<unsigned long long>(healthy.events_seen),
      static_cast<unsigned long long>(healthy.crashes),
      static_cast<unsigned long long>(healthy.reapplies),
      healthy.report.c_str());

  const auto replayed = chaos::run_soak(def, schedule, options);
  std::printf("replay determinism: traces %s (%zu bytes)\n",
              replayed.trace == healthy.trace ? "IDENTICAL" : "DIVERGED",
              healthy.trace.size());

  // --- 2. the planted bug: re-apply forgets ejections ----------------------
  options.plant_ejection_loss_bug = true;
  const auto buggy = chaos::run_soak(def, schedule, options);
  std::printf("\nplanted-bug run:\n%s", buggy.report.c_str());
  if (!buggy.violated) {
    // This seed's re-applies all landed outside ejection windows; a
    // real sweep would try the next seed. Keep the example short.
    std::printf("(seed 42 did not trip the planted bug)\n");
    return 0;
  }

  const auto shrunk = chaos::shrink(def, schedule, options);
  if (shrunk.has_value()) {
    std::printf("\nshrunk to %zu window(s) after %zu soak(s):\n",
                shrunk->minimal.windows.size(), shrunk->soaks_run);
    print_schedule(shrunk->minimal);
    std::printf("\nreplayable minimal schedule:\n%s",
                shrunk->minimal.to_yaml().c_str());
  }
  return 0;
}
