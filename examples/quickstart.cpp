// Quickstart: define a two-phase live testing strategy in the Bifrost
// DSL, compile it to the formal model, and enact it with the engine —
// all in-process, on a manual clock, with scripted metrics. No sockets.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <map>

#include "dsl/dsl.hpp"
#include "engine/execution.hpp"
#include "runtime/manual_clock.hpp"

using namespace bifrost;
using namespace std::chrono_literals;

namespace {

// Scripted monitoring data: the canary's error count stays low, so the
// strategy promotes the new version.
class ScriptedMetrics final : public engine::MetricsClient {
 public:
  util::Result<std::optional<double>> query(const core::ProviderConfig&,
                                            const std::string& query) override {
    std::printf("  [metrics] %s -> 2 errors\n", query.c_str());
    return std::optional<double>{2.0};
  }
};

// Proxy reconfigurations are printed instead of sent anywhere.
class PrintingProxies final : public engine::ProxyController {
 public:
  util::Result<void> apply(const core::ServiceDef& service,
                           const proxy::ProxyConfig& config) override {
    std::printf("  [proxy] %s:", service.name.c_str());
    for (const auto& backend : config.backends) {
      std::printf(" %s=%.0f%%", backend.version.c_str(), backend.percent);
    }
    std::printf("\n");
    return {};
  }
};

}  // namespace

int main() {
  // A canary release of the "search" service: 5% of traffic to the new
  // version, promoted to 100% if the error metric stays below 5 across
  // three checks 10 seconds apart.
  const char* kStrategy = R"(
strategy:
  name: quickstart
  initial: canary
  states:
    - state:
        name: canary
        onSuccess: promote
        onFailure: rollback
        checks:
          - metric:
              name: search-errors
              query: request_errors{service="search"}
              validator: "<5"
              intervalTime: 10
              intervalLimit: 3
        routes:
          - route:
              service: search
              split:
                - version: stable
                  percent: 95
                - version: canary
                  percent: 5
    - state:
        name: promote
        final: success
        routes:
          - route:
              service: search
              split:
                - version: canary
                  percent: 100
    - state:
        name: rollback
        final: rollback
deployment:
  providers:
    prometheus: { host: 127.0.0.1, port: 9090 }
  services:
    - service:
        name: search
        proxy: { adminHost: 127.0.0.1, adminPort: 8101 }
        versions:
          - version: { name: stable, host: 127.0.0.1, port: 8001 }
          - version: { name: canary, host: 127.0.0.1, port: 8002 }
)";

  auto strategy = dsl::compile(kStrategy);
  if (!strategy.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 strategy.error_message().c_str());
    return 1;
  }
  std::printf("compiled strategy '%s' with %zu states\n\n",
              strategy.value().name.c_str(), strategy.value().states.size());

  runtime::ManualClock clock;
  ScriptedMetrics metrics;
  PrintingProxies proxies;
  engine::StrategyExecution execution(
      "quickstart-1", clock, metrics, proxies, std::move(strategy).value(),
      [](const engine::StatusEvent& event) {
        std::printf("[%6.1fs] %-18s state=%-8s %s %s\n", event.time_seconds,
                    event.type_name().c_str(), event.state.c_str(),
                    event.check.c_str(), event.detail.c_str());
      });

  execution.start();
  clock.advance_by(60s);  // three checks at t = 10, 20, 30

  std::printf("\nfinal status: %s\n",
              execution.status() == engine::ExecutionStatus::kSucceeded
                  ? "rolled out"
                  : "not rolled out");
  return execution.status() == engine::ExecutionStatus::kSucceeded ? 0 : 1;
}
