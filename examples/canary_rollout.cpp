// The paper's running example (Figures 1 and 2): the fastSearch
// reimplementation is canary-tested at 1%, gradually rolled out through
// 5/10/15/20% (the rollout macro uses uniform 5% steps; the paper jumps
// 5-10-20), A/B-tested at 50/50, and finally either fully rolled out or
// rolled back. An exception check guards the first canary state.
//
// The strategy is enacted twice in virtual time on the discrete-event
// simulator with different synthetic metric trajectories:
//   scenario 1 — healthy metrics, B wins the A/B test -> full rollout;
//   scenario 2 — the error rate explodes mid-canary -> the exception
//                check rolls the release back immediately.
//
//   $ ./examples/canary_rollout
#include <cstdio>
#include <string>

#include "core/model.hpp"
#include "dsl/dsl.hpp"
#include "engine/execution.hpp"
#include "sim/sim_env.hpp"
#include "sim/simulation.hpp"

using namespace bifrost;
using namespace std::chrono_literals;

namespace {

// The running example in the DSL. Durations use the paper's "1 day per
// phase, 5 days A/B" scaled 1 day -> 60 s of virtual time.
const char* kFastSearchStrategy = R"(
strategy:
  name: fastsearch-rollout
  initial: canary-1
  states:
    - state:
        name: canary-1                    # fastSearch 1% (state a, Fig. 2)
        duration: 60
        onSuccess: ramp-5
        onFailure: rollback
        checks:
          - metric:
              name: response-time
              query: response_time_ms{service="search",version="fast"}
              validator: "<150"
              intervalTime: 10
              intervalLimit: 5
          - check:
              name: error-explosion-guard # dashed edge in Fig. 2
              type: exception
              fallback: rollback
              intervalTime: 10
              intervalLimit: 5
              metrics:
                - metric:
                    query: request_errors{service="search",version="fast"}
                    validator: "<100"
        routes:
          - route:
              service: search
              split:
                - version: stable
                  percent: 99
                - version: fast
                  percent: 1
    - rollout:                            # states b, c, d (5%, 10%, 20%)
        name: ramp
        service: search
        from: stable
        to: fast
        startPercent: 5
        stepPercent: 5
        endPercent: 20
        stepDuration: 60
        onComplete: ab-test
        onFailure: rollback
        checks:
          - metric:
              name: response-time
              query: response_time_ms{service="search",version="fast"}
              validator: "<150"
              intervalTime: 15
              intervalLimit: 4
          - check:
              name: error-explosion-guard
              type: exception
              fallback: rollback
              intervalTime: 15
              intervalLimit: 4
              metrics:
                - metric:
                    query: request_errors{service="search",version="fast"}
                    validator: "<100"
    - state:
        name: ab-test                     # state e: 50/50 for "5 days"
        duration: 300
        onSuccess: full-rollout
        onFailure: rollback
        checks:
          - metric:
              name: sales-uplift
              query: sales_total{version="fast"}
              validator: ">=100"
              intervalTime: 290
              intervalLimit: 1
        routes:
          - route:
              service: search
              sticky: true
              split:
                - version: stable
                  percent: 50
                - version: fast
                  percent: 50
    - state:
        name: full-rollout                # state f: fastSearch 100%
        final: success
        routes:
          - route:
              service: search
              split:
                - version: fast
                  percent: 100
    - state:
        name: rollback                    # state g: search 100%
        final: rollback
        routes:
          - route:
              service: search
              split:
                - version: stable
                  percent: 100
deployment:
  providers:
    prometheus: { host: prometheus, port: 9090 }
  services:
    - service:
        name: search
        proxy: { adminHost: proxy, adminPort: 81 }
        versions:
          - version: { name: stable, host: search-stable, port: 80 }
          - version: { name: fast, host: search-fast, port: 80 }
)";

void enact(const std::string& label, sim::MetricFn metric_fn) {
  std::printf("\n--- scenario: %s ---\n", label.c_str());
  auto strategy = dsl::compile(kFastSearchStrategy);
  if (!strategy.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 strategy.error_message().c_str());
    std::exit(1);
  }

  sim::Simulation sim;
  sim::SimMetricsClient metrics(sim, std::move(metric_fn));
  sim::SimProxyController proxies(sim);
  engine::StrategyExecution execution(
      "fastsearch-1", sim, metrics, proxies, std::move(strategy).value(),
      [](const engine::StatusEvent& event) {
        if (event.type == engine::StatusEvent::Type::kStateEntered ||
            event.type == engine::StatusEvent::Type::kExceptionTriggered ||
            event.type == engine::StatusEvent::Type::kFinished) {
          std::printf("[%7.1fs] %-20s %s\n", event.time_seconds,
                      event.type_name().c_str(), event.state.c_str());
        }
      });
  sim.schedule_at(runtime::Time{0}, [&] { execution.start(); });
  sim.run_all();

  std::printf("visited:");
  for (const engine::StateVisit& visit : execution.history()) {
    std::printf(" %s", visit.state.c_str());
  }
  std::printf("\nresult: %s\n",
              execution.status() == engine::ExecutionStatus::kSucceeded
                  ? "fastSearch fully rolled out"
                  : "rolled back to stable search");
}

}  // namespace

int main() {
  // Print the automaton first (paper Figure 2).
  auto strategy = dsl::compile(kFastSearchStrategy);
  if (!strategy.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 strategy.error_message().c_str());
    return 1;
  }
  std::printf("Automaton of the running example (Graphviz):\n%s",
              core::to_dot(strategy.value()).c_str());

  // Scenario 1: healthy service, strong sales -> full rollout.
  enact("healthy canary, fastSearch wins the A/B test",
        [](const std::string& query, double) -> std::optional<double> {
          if (query.find("response_time") != std::string::npos) return 80.0;
          if (query.find("request_errors") != std::string::npos) return 3.0;
          if (query.find("sales_total") != std::string::npos) return 250.0;
          return 0.0;
        });

  // Scenario 2: the error rate explodes 150 virtual seconds in (during
  // the 10% ramp step); the exception check guarding the ramp fires
  // mid-state and rolls back immediately.
  enact("error explosion during the ramp -> immediate rollback",
        [](const std::string& query, double t) -> std::optional<double> {
          if (query.find("response_time") != std::string::npos) return 80.0;
          if (query.find("request_errors") != std::string::npos) {
            return t < 150.0 ? 3.0 : 5000.0;
          }
          if (query.find("sales_total") != std::string::npos) return 250.0;
          return 0.0;
        });
  return 0;
}
