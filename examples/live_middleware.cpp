// Full live demo over real loopback sockets: the 7-service case-study
// e-commerce application, Bifrost proxies in front of the product and
// search services, the metrics provider with its scrape loop, the
// engine with its REST API, and a load generator producing user
// traffic. A three-phase strategy (canary -> dark launch -> A/B test ->
// promote) is submitted through the REST API exactly as the Bifrost CLI
// would, and its progress is streamed from the /events endpoint.
//
//   $ ./examples/live_middleware          (~15 s)
#include <chrono>
#include <cstdio>
#include <thread>

#include "casestudy/app.hpp"
#include "engine/engine.hpp"
#include "engine/http_clients.hpp"
#include "engine/resilience.hpp"
#include "engine/server.hpp"
#include "http/client.hpp"
#include "json/json.hpp"
#include "loadgen/loadgen.hpp"
#include "loadgen/workload.hpp"
#include "runtime/event_loop.hpp"

using namespace bifrost;
using namespace std::chrono_literals;

int main() {
  // 1. The microservice application (Figure 5 of the paper).
  casestudy::AppOptions options;
  options.product_delay = 4ms;
  options.search_delay = 4ms;
  options.fast_search_delay = 2ms;
  options.auth_delay = 1ms;
  options.db_delay = 500us;
  options.scrape_interval = 250ms;
  casestudy::CaseStudyApp app(options);
  app.start();
  std::printf("case study up: gateway :%u, product proxy :%u, metrics :%u\n",
              app.gateway_endpoint().port, app.product_entry().port,
              app.metrics_endpoint().port);

  // 2. The Bifrost engine and its REST API. The HTTP clients are
  // wrapped in the resilience decorators so per-provider/per-service
  // retry and circuit-breaker policies from the DSL take effect, with
  // degradation events flowing into the engine's event stream.
  runtime::EventLoop loop;
  loop.start();
  engine::HttpMetricsClient raw_metrics_client;
  engine::HttpProxyController raw_proxy_controller;
  engine::ResilientMetricsClient metrics_client(raw_metrics_client, loop,
                                                engine::thread_sleeper());
  engine::ResilientProxyController proxy_controller(raw_proxy_controller, loop,
                                                    engine::thread_sleeper());
  engine::Engine engine(loop, metrics_client, proxy_controller);
  metrics_client.set_listener(engine.event_logger());
  proxy_controller.set_listener(engine.event_logger());
  engine::EngineServer api(engine);
  api.start();
  std::printf("engine API on 127.0.0.1:%u "
              "(dashboard: http://127.0.0.1:%u/)\n",
              api.port(), api.port());

  // 3. Production traffic (the paper's 4-request mix).
  loadgen::LoadGenerator::Options gen_options;
  gen_options.requests_per_second = 50.0;
  gen_options.poisson = true;
  loadgen::LoadGenerator generator(
      gen_options, app.product_entry().host, app.product_entry().port,
      loadgen::paper_request_mix(app.auth_token(), 12));
  generator.start();

  // 4. Submit the release strategy through the REST API, like the CLI.
  const auto product = app.product_service_def();
  const auto provider = app.prometheus_provider();
  char yaml[4096];
  std::snprintf(yaml, sizeof yaml, R"(
strategy:
  name: live-demo
  initial: canary
  states:
    - state:
        name: canary
        onSuccess: dark
        onFailure: rollback
        checks:
          - metric:
              name: b-errors
              query: request_errors{service="product",version="b"}
              validator: "<10"
              failOnNoData: false
              intervalTime: 1
              intervalLimit: 3
        routes:
          - route:
              service: product
              split:
                - version: stable
                  percent: 90
                - version: b
                  percent: 10
    - state:
        name: dark
        duration: 3
        next: ab
        routes:
          - route:
              service: product
              split:
                - version: stable
                  percent: 100
              shadows:
                - shadow: { from: stable, to: b, percent: 100 }
    - state:
        name: ab
        duration: 3
        next: promote
        routes:
          - route:
              service: product
              sticky: true
              split:
                - version: a
                  percent: 50
                - version: b
                  percent: 50
    - state:
        name: promote
        final: success
        routes:
          - route:
              service: product
              split:
                - version: b
                  percent: 100
    - state:
        name: rollback
        final: rollback
        routes:
          - route:
              service: product
              split:
                - version: stable
                  percent: 100
deployment:
  providers:
    prometheus: { host: 127.0.0.1, port: %u }
  services:
    - service:
        name: product
        proxy: { adminHost: 127.0.0.1, adminPort: %u }
        versions:
          - version: { name: stable, host: 127.0.0.1, port: %u }
          - version: { name: a, host: 127.0.0.1, port: %u }
          - version: { name: b, host: 127.0.0.1, port: %u }
)",
                provider.port, product.proxy_admin_port,
                product.versions[0].port, product.versions[1].port,
                product.versions[2].port);

  http::HttpClient client;
  const std::string base = "http://127.0.0.1:" + std::to_string(api.port());
  auto submitted = client.post(base + "/strategies", yaml,
                               "application/x-yaml");
  if (!submitted.ok() || submitted.value().status != 201) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.ok() ? submitted.value().body.c_str()
                                : submitted.error_message().c_str());
    return 1;
  }
  const std::string id =
      json::parse(submitted.value().body).value().get_string("id");
  std::printf("submitted strategy %s\n\n", id.c_str());

  // 5. Stream status events (long-poll) until the strategy finishes.
  std::uint64_t since = 0;
  bool finished = false;
  while (!finished) {
    auto events = client.get(base + "/events?wait=2000&since=" +
                             std::to_string(since));
    if (!events.ok()) break;
    auto docs = json::parse(events.value().body);
    if (!docs.ok() || !docs.value().is_array()) continue;
    for (const auto& event : docs.value().as_array()) {
      since = std::max(
          since, static_cast<std::uint64_t>(event.get_number("seq")));
      const std::string type = event.get_string("type");
      if (type == "state_entered" || type == "finished" ||
          type == "check_completed") {
        std::printf("[%6.2fs] %-16s %-10s %s\n", event.get_number("time"),
                    type.c_str(), event.get_string("state").c_str(),
                    event.get_string("check").c_str());
      }
      finished |= type == "finished" || type == "aborted";
    }
  }
  generator.stop();

  // 6. What did users see? Which backends served them?
  std::map<std::string, int> served;
  for (const auto& result : generator.results()) {
    if (!result.served_by.empty()) ++served[result.served_by];
  }
  std::printf("\nrequests served per version:");
  for (const auto& [version, count] : served) {
    std::printf(" %s=%d", version.c_str(), count);
  }
  std::printf("\nshadow requests duplicated during the dark launch: %llu\n",
              static_cast<unsigned long long>(
                  app.product_proxy()->shadow_requests()));
  std::printf("sticky sessions pinned during the A/B test: %zu\n",
              app.product_proxy()->sticky_sessions());

  const auto snapshot = engine.status(id);
  std::printf("strategy end state: %s\n",
              snapshot ? snapshot->current_state.c_str() : "?");

  api.stop();
  loop.stop();
  app.stop();
  return 0;
}
