// Probabilistic reasoning about a release strategy before running it —
// the paper's §1 motivation ("fosters formally or probabilistically
// reasoning about the strategy, e.g., in terms of expected rollout
// time") made executable.
//
// The running-example strategy is analyzed as an absorbing Markov chain
// under a sweep of per-step failure probabilities: how long is the
// rollout expected to take, and how likely is it to complete, as the
// canary steps get riskier?
//
//   $ ./examples/analyze_strategy
#include <chrono>
#include <cstdio>

#include "core/analysis.hpp"
#include "dsl/dsl.hpp"

using namespace bifrost;

namespace {

const char* kStrategy = R"(
strategy:
  name: guarded-ramp
  initial: canary
  states:
    - state:
        name: canary
        duration: 3600            # 1 h canary
        onSuccess: ramp-25
        onFailure: rollback
        checks:
          - metric:
              query: request_errors
              validator: "<5"
              intervalTime: 300
              intervalLimit: 12
    - rollout:
        name: ramp
        service: search
        from: stable
        to: fast
        startPercent: 25
        stepPercent: 25
        endPercent: 100
        stepDuration: 1800        # 30 min per step
        onComplete: done
        onFailure: rollback
        checks:
          - metric:
              query: request_errors
              validator: "<5"
              intervalTime: 300
              intervalLimit: 6
    - state:
        name: done
        final: success
    - state:
        name: rollback
        final: rollback
deployment:
  providers:
    prometheus: { host: 127.0.0.1, port: 9090 }
  services:
    - service:
        name: search
        proxy: { adminHost: 127.0.0.1, adminPort: 8101 }
        versions:
          - version: { name: stable, host: 127.0.0.1, port: 8001 }
          - version: { name: fast, host: 127.0.0.1, port: 8002 }
)";

}  // namespace

int main() {
  auto compiled = dsl::compile(kStrategy);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.error_message().c_str());
    return 1;
  }
  const core::StrategyDef& strategy = compiled.value();

  std::printf("strategy '%s': %zu states, optimistic duration %.1f h\n\n",
              strategy.name.c_str(), strategy.states.size(),
              std::chrono::duration<double>(strategy.expected_duration())
                      .count() /
                  3600.0);

  std::printf("per-step failure probability -> expected outcome:\n");
  std::printf("%8s | %12s | %12s | %14s\n", "p(fail)", "P(success)",
              "P(rollback)", "E[duration] h");
  for (const double p_fail : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    // Every non-final state fails (-> its low branch) with p_fail.
    core::TransitionModel model;
    for (const core::StateDef& state : strategy.states) {
      if (state.is_final()) continue;
      core::StateProbabilities probabilities;
      if (state.transitions.size() == 2) {
        probabilities.transition_probability = {p_fail, 1.0 - p_fail};
      } else {
        probabilities.transition_probability.assign(
            state.transitions.size(), 0.0);
        probabilities.transition_probability.back() = 1.0;
      }
      model[state.name] = std::move(probabilities);
    }
    const auto analysis = core::analyze(strategy, model);
    if (!analysis.ok()) {
      std::fprintf(stderr, "analysis failed: %s\n",
                   analysis.error_message().c_str());
      return 1;
    }
    std::printf("%8.2f | %12.3f | %12.3f | %14.2f\n", p_fail,
                analysis.value().success_probability,
                analysis.value().rollback_probability,
                std::chrono::duration<double>(
                    analysis.value().expected_duration)
                        .count() /
                    3600.0);
  }

  std::printf(
      "\nreading: with a 10%% chance of any step failing, the release\n"
      "completes with probability %.0f%%; budget the rollout window\n"
      "accordingly before enacting the strategy.\n",
      [&] {
        core::TransitionModel model;
        for (const core::StateDef& state : strategy.states) {
          if (state.is_final() || state.transitions.size() != 2) continue;
          model[state.name].transition_probability = {0.10, 0.90};
        }
        return core::analyze(strategy, model).value().success_probability *
               100.0;
      }());
  return 0;
}
